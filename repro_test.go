// Paper-shape reproduction tests: each test asserts one family of
// observations from Section V of the paper against the simulated case
// study.  Absolute numbers are scaled (our run is millions rather than
// billions of instructions), but the shapes the paper reports — who
// ranks where, which ratios are extreme, which kernel owns which phase —
// must hold.
package repro_test

import (
	"testing"

	"tquad/internal/core"
	"tquad/internal/flatprof"
	"tquad/internal/quad"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

// sharedStudy caches one Study across tests (profile runs are seconds
// each).
var sharedStudy *study.Study

func getStudy(t *testing.T) *study.Study {
	t.Helper()
	if sharedStudy == nil {
		s, err := study.New(wfs.Small())
		if err != nil {
			t.Fatalf("study: %v", err)
		}
		sharedStudy = s
	}
	return sharedStudy
}

func mustRow(t *testing.T, p *flatprof.Profile, name string) flatprof.Row {
	t.Helper()
	r, ok := p.Row(name)
	if !ok {
		t.Fatalf("kernel %s missing from flat profile", name)
	}
	return r
}

// TestPaperObservations_TableI checks the gprof flat-profile shape:
// wav_store and fft1d lead, call counts follow the program structure, and
// highly-called kernels have tiny per-call times.
func TestPaperObservations_TableI(t *testing.T) {
	s := getStudy(t)
	p, err := s.FlatProfile()
	if err != nil {
		t.Fatalf("flat profile: %v", err)
	}
	cfg := s.W.Cfg

	if got := p.Rank("wav_store"); got != 1 {
		t.Errorf("wav_store rank = %d, want 1 (paper: 31.91%% of time)", got)
	}
	if got := p.Rank("fft1d"); got < 1 || got > 3 {
		t.Errorf("fft1d rank = %d, want top-3 (paper: rank 2)", got)
	}
	ws := mustRow(t, p, "wav_store")
	ff := mustRow(t, p, "fft1d")
	if sum := ws.Pct + ff.Pct; sum < 35 {
		t.Errorf("wav_store+fft1d = %.1f%% of time, want >= 35%% (paper: ~60%%)", sum)
	}

	// Call counts are structural, so they are exact.
	wantCalls := map[string]uint64{
		"wav_store":              1,
		"wav_load":               1,
		"ldint":                  1,
		"ffw":                    2,
		"fft1d":                  uint64(2*cfg.Frames + 2),
		"perm":                   uint64(2*cfg.Frames + 2),
		"bitrev":                 uint64((2*cfg.Frames + 2) * cfg.FFTSize),
		"cadd":                   uint64(cfg.Frames * cfg.FFTSize),
		"cmult":                  uint64(cfg.Frames * cfg.FFTSize),
		"DelayLine_processChunk": uint64(cfg.Frames),
		"AudioIo_getFrames":      uint64(cfg.Frames),
		"AudioIo_setFrames":      uint64(cfg.Frames),
		"Filter_process":         uint64(cfg.Frames),
		"Filter_process_pre_":    uint64(cfg.Frames),
		"zeroCplxVec":            uint64(cfg.Frames),
		"zeroRealVec":            uint64(cfg.Frames * cfg.Speakers),
		"r2c":                    uint64(cfg.Frames),
		"c2r":                    uint64(cfg.Frames),
	}
	for name, want := range wantCalls {
		if got := mustRow(t, p, name).Calls; got != want {
			t.Errorf("%s calls = %d, want %d", name, got, want)
		}
	}

	// "The highly-called kernels have often quite a simple body."
	for _, name := range []string{"bitrev", "cadd", "cmult"} {
		if r := mustRow(t, p, name); r.SelfMsCall > 0.01 {
			t.Errorf("%s self ms/call = %.4f, want < 0.01", name, r.SelfMsCall)
		}
	}
	// wav_store: one call, large span ("the kernel must be active in a
	// large time span").
	if ws.SelfMsCall < 10*mustRow(t, p, "fft1d").SelfMsCall {
		t.Errorf("wav_store ms/call (%.3f) not dominant over fft1d's (%.4f)",
			ws.SelfMsCall, ff.SelfMsCall)
	}
}

func kstats(t *testing.T, r *quad.Report, name string) quad.KernelStats {
	t.Helper()
	k, ok := r.Kernel(name)
	if !ok {
		t.Fatalf("kernel %s missing from QUAD report", name)
	}
	return k
}

// TestPaperObservations_TableII checks the QUAD producer/consumer shapes:
// the AudioIo pair's distinct-address signature, the zero* kernels'
// extreme stack ratios, fft1d's identical UnMA across modes, and
// wav_store's small-output-buffer funnel.
func TestPaperObservations_TableII(t *testing.T) {
	s := getStudy(t)
	excl, _, err := s.QUAD(false)
	if err != nil {
		t.Fatalf("QUAD excl: %v", err)
	}
	incl, _, err := s.QUAD(true)
	if err != nil {
		t.Fatalf("QUAD incl: %v", err)
	}
	cfg := s.W.Cfg

	// AudioIo_setFrames: "the data transfer is carried out via separate
	// memory addresses ... the number of bytes and UnMAs are almost
	// identical" for writes.
	sf := kstats(t, excl, "AudioIo_setFrames")
	if sf.Out != sf.OutUnMA {
		t.Errorf("AudioIo_setFrames OUT=%d != OUT UnMA=%d (paper: almost identical)", sf.Out, sf.OutUnMA)
	}
	if want := uint64(cfg.TotalOutputSamples() * 8); sf.OutUnMA != want {
		t.Errorf("AudioIo_setFrames OUT UnMA = %d, want %d (every output address exactly once)", sf.OutUnMA, want)
	}
	// AudioIo_getFrames reads every source address exactly once.
	gf := kstats(t, excl, "AudioIo_getFrames")
	if gf.In != gf.InUnMA {
		t.Errorf("AudioIo_getFrames IN=%d != IN UnMA=%d", gf.In, gf.InUnMA)
	}

	// zeroRealVec / zeroCplxVec: stack-inclusion ratios "greater than
	// 750 and 300" in the paper; ours must be extreme too.
	for _, name := range []string{"zeroRealVec", "zeroCplxVec"} {
		e := kstats(t, excl, name)
		i := kstats(t, incl, name)
		if e.In == 0 {
			t.Fatalf("%s stack-excluded IN is zero", name)
		}
		if ratio := float64(i.In) / float64(e.In); ratio < 50 {
			t.Errorf("%s stack incl/excl IN ratio = %.1f, want >= 50", name, ratio)
		}
	}

	// fft1d: "the UnMAs reported in the two cases remain identical"
	// (its scratch is stack-resident), with a clear stack-traffic
	// surplus when included.
	fe := kstats(t, excl, "fft1d")
	fi := kstats(t, incl, "fft1d")
	// The stack-resident twiddle table is "rather nominal" next to the
	// signal buffer (scaled: our FFT is 256-point, not 2048-point, so
	// the scratch is proportionally larger than the paper's).
	if fi.InUnMA > 2*fe.InUnMA {
		t.Errorf("fft1d IN UnMA incl=%d vs excl=%d: want nearly identical", fi.InUnMA, fe.InUnMA)
	}
	if ratio := float64(fi.In) / float64(fe.In); ratio < 1.2 {
		t.Errorf("fft1d stack incl/excl IN ratio = %.2f, want >= 1.2", ratio)
	}

	// DelayLine_processChunk accumulates through stack scratch.
	de := kstats(t, excl, "DelayLine_processChunk")
	di := kstats(t, incl, "DelayLine_processChunk")
	if ratio := float64(di.In) / float64(de.In); ratio < 2 {
		t.Errorf("DelayLine stack incl/excl IN ratio = %.2f, want >= 2 (paper: ~9)", ratio)
	}

	// Filter_process_pre_ keeps its window in registers: "almost
	// identical amount of memory bandwidth usage in the cases of
	// including and excluding the stack area".
	pe := kstats(t, excl, "Filter_process_pre_")
	pi := kstats(t, incl, "Filter_process_pre_")
	if ratio := float64(pi.In) / float64(pe.In); ratio > 1.25 {
		t.Errorf("Filter_process_pre_ incl/excl IN ratio = %.2f, want <= 1.25", ratio)
	}

	// wav_store: huge distinct read set (it fetches the whole output
	// matrix) against a tiny reused output buffer.
	we := kstats(t, excl, "wav_store")
	wi := kstats(t, incl, "wav_store")
	if we.InUnMA < uint64(cfg.TotalOutputSamples()*8) {
		t.Errorf("wav_store IN UnMA = %d, want >= %d (fetches every output address)",
			we.InUnMA, cfg.TotalOutputSamples()*8)
	}
	if we.OutUnMA > 2048 {
		t.Errorf("wav_store OUT UnMA = %d, want small (reused staging buffer)", we.OutUnMA)
	}
	if ratio := float64(wi.In) / float64(we.In); ratio < 1.5 || ratio > 6 {
		t.Errorf("wav_store incl/excl IN ratio = %.2f, want ~2-4 (paper: about half from stack)", ratio)
	}

	// The QDU graph must trace AudioIo_setFrames's data back to
	// DelayLine_processChunk and forward to wav_store, as the paper
	// does.
	var toStore, fromDelay bool
	for _, b := range incl.Bindings {
		if b.Producer == "AudioIo_setFrames" && b.Consumer == "wav_store" && b.Bytes > 0 {
			toStore = true
		}
		if b.Producer == "DelayLine_processChunk" && b.Consumer == "AudioIo_setFrames" && b.Bytes > 0 {
			fromDelay = true
		}
	}
	if !toStore || !fromDelay {
		t.Errorf("QDU chain DelayLine->setFrames->wav_store incomplete (fromDelay=%v toStore=%v)", fromDelay, toStore)
	}
}

// TestPaperObservations_TableIII checks the QUAD-instrumented re-ranking:
// kernels dominated by non-local traffic gain share, stack-bound kernels
// collapse.
func TestPaperObservations_TableIII(t *testing.T) {
	s := getStudy(t)
	base, instr, err := s.InstrumentedFlat()
	if err != nil {
		t.Fatalf("instrumented flat: %v", err)
	}
	rows := flatprof.Compare(base, instr, wfs.TopTenKernels())
	byName := make(map[string]flatprof.CompareRow, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}

	// "a substantial increase in the contribution of AudioIo_setFrames".
	sf := byName["AudioIo_setFrames"]
	if sf.Trend != flatprof.TrendUp && sf.Trend != flatprof.TrendStrongUp {
		t.Errorf("AudioIo_setFrames trend = %v, want up (paper: 4%% -> 11%%)", sf.Trend)
	}
	if baseRank, newRank := base.Rank("AudioIo_setFrames"), sf.Rank; newRank >= baseRank {
		t.Errorf("AudioIo_setFrames rank %d -> %d, want improvement (paper: 6 -> 3)", baseRank, newRank)
	}
	// "bitrev shows a severe drop on the execution time contribution."
	br := byName["bitrev"]
	if br.Trend != flatprof.TrendStrongDown {
		t.Errorf("bitrev trend = %v, want strong down (paper: 8.19 -> 0.42)", br.Trend)
	}
	// zeroRealVec drops too (stack-only traffic is discarded cheaply).
	zr := byName["zeroRealVec"]
	if zr.Trend != flatprof.TrendDown && zr.Trend != flatprof.TrendStrongDown {
		t.Errorf("zeroRealVec trend = %v, want down", zr.Trend)
	}
	// wav_store and fft1d stay at the top.
	if r := byName["wav_store"].Rank; r > 3 {
		t.Errorf("wav_store instrumented rank = %d, want top-3 (paper: 1)", r)
	}
	if r := byName["fft1d"].Rank; r > 3 {
		t.Errorf("fft1d instrumented rank = %d, want top-3 (paper: 2)", r)
	}
}

// TestPaperObservations_Figures checks the temporal shapes of Figures 6
// and 7: wav_store silent early and exclusive late, write traffic lighter
// than read traffic, and AudioIo_setFrames peaking far above everyone
// else.
func TestPaperObservations_Figures(t *testing.T) {
	s := getStudy(t)
	iv, err := s.SliceForCount(64)
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	prof, _, err := s.TQUAD(core.Options{SliceInterval: iv, IncludeStack: true})
	if err != nil {
		t.Fatalf("tQUAD: %v", err)
	}

	ws, ok := prof.Kernel("wav_store")
	if !ok {
		t.Fatalf("wav_store missing")
	}
	// "It is silent in the first half and it is the only kernel active
	// in the second half."  Scaled bound: silent through the first 55%.
	if ws.FirstSlice < prof.NumSlices*55/100 {
		t.Errorf("wav_store first active slice = %d of %d, want silent through the first 55%%",
			ws.FirstSlice, prof.NumSlices)
	}
	if ws.LastSlice < prof.NumSlices-2 {
		t.Errorf("wav_store last active slice = %d of %d, want active to the end", ws.LastSlice, prof.NumSlices)
	}
	// Tail exclusivity among the paper's kernels.
	kernelSet := make(map[string]bool)
	for _, k := range wfs.KernelNames() {
		kernelSet[k] = true
	}
	for slice := prof.NumSlices * 9 / 10; slice < prof.NumSlices; slice++ {
		for _, name := range prof.ActiveSet(slice) {
			if kernelSet[name] && name != "wav_store" {
				t.Fatalf("slice %d/%d: kernel %s active in the wav_store-only tail", slice, prof.NumSlices, name)
			}
		}
	}

	// "Memory write accesses have almost similar figures but the
	// intensity of the data transfers is less by at least a factor of
	// two in most kernels."
	lighter := 0
	counted := 0
	for _, k := range prof.Kernels {
		if !kernelSet[k.Name] || k.TotalReadIncl == 0 {
			continue
		}
		counted++
		if k.TotalWriteIncl*2 <= k.TotalReadIncl*3 { // writes <= 1.5x reads
			lighter++
		}
	}
	if counted == 0 || lighter*3 < counted*2 {
		t.Errorf("writes lighter than reads for %d/%d kernels, want a clear majority", lighter, counted)
	}

	// AudioIo_setFrames peaks far above every other kernel
	// (paper: >50 B/instr vs at most 3.4 for all others).
	sf, ok := prof.Kernel("AudioIo_setFrames")
	if !ok {
		t.Fatalf("AudioIo_setFrames missing")
	}
	sfMax := sf.Stats(true, prof.SliceInterval).MaxRW
	for _, k := range prof.Kernels {
		if !kernelSet[k.Name] || k.Name == "AudioIo_setFrames" {
			continue
		}
		if m := k.Stats(true, prof.SliceInterval).MaxRW; m >= sfMax {
			t.Errorf("kernel %s max bandwidth %.3f B/instr >= AudioIo_setFrames's %.3f", k.Name, m, sfMax)
		}
	}
}

// TestPaperObservations_TableIV checks phase identification: five phases
// in the paper's order with the right occupants.
func TestPaperObservations_TableIV(t *testing.T) {
	s := getStudy(t)
	phases, prof, err := s.Phases(5000)
	if err != nil {
		t.Fatalf("phases: %v", err)
	}
	if len(phases) != 5 {
		for i, ph := range phases {
			t.Logf("phase %d [%d,%d): %v", i+1, ph.Start, ph.End, ph.KernelNames())
		}
		t.Fatalf("detected %d phases, want 5 (initialization, wave load, wave propagation, WFS main, wave save)", len(phases))
	}
	has := func(ph int, name string) bool {
		for _, k := range phases[ph].Kernels {
			if k.Name == name {
				return true
			}
		}
		return false
	}
	// Phase 1: initialization (ffw, ldint).
	if !has(0, "ffw") || !has(0, "ldint") {
		t.Errorf("phase 1 %v should contain ffw and ldint", phases[0].KernelNames())
	}
	// Phase 2: wave load.
	if !has(1, "wav_load") {
		t.Errorf("phase 2 %v should contain wav_load", phases[1].KernelNames())
	}
	// Phase 3: wave propagation.
	for _, k := range []string{"calculateGainPQ", "vsmult2d", "PrimarySource_deriveTP"} {
		if !has(2, k) {
			t.Errorf("phase 3 %v should contain %s", phases[2].KernelNames(), k)
		}
		if has(3, k) {
			t.Errorf("phase 4 should not contain propagation kernel %s", k)
		}
	}
	// Phase 4: WFS main processing, "fourteen kernels are active".
	if n := len(phases[3].Kernels); n < 10 {
		t.Errorf("phase 4 has %d kernels, want >= 10 (paper: 14)", n)
	}
	for _, k := range []string{"fft1d", "DelayLine_processChunk", "AudioIo_setFrames", "cadd", "cmult"} {
		if !has(3, k) {
			t.Errorf("phase 4 %v should contain %s", phases[3].KernelNames(), k)
		}
	}
	// Phase 5: wave save — wav_store only there, spanning a large tail.
	if !has(4, "wav_store") {
		t.Fatalf("phase 5 %v should contain wav_store", phases[4].KernelNames())
	}
	for ph := 0; ph < 4; ph++ {
		if has(ph, "wav_store") {
			t.Errorf("wav_store must be exclusive to the final phase, found in phase %d", ph+1)
		}
	}
	if span := phases[4].Span(); span < prof.NumSlices/4 {
		t.Errorf("wave-save phase spans %d of %d slices, want >= 25%% (paper: 53%%)", span, prof.NumSlices)
	}
	// "this phase [WFS main] has the biggest share of the whole memory
	// bandwidth traffic."
	for i, ph := range phases {
		if i != 3 && ph.AggregateMBW >= phases[3].AggregateMBW {
			t.Errorf("phase %d aggregate MBW %.3f >= WFS-main phase's %.3f", i+1, ph.AggregateMBW, phases[3].AggregateMBW)
		}
	}
	// Phases are ordered and non-overlapping by construction; verify.
	for i := 1; i < len(phases); i++ {
		if phases[i].Start != phases[i-1].End {
			t.Errorf("phase %d starts at %d, previous ends at %d", i+1, phases[i].Start, phases[i-1].End)
		}
	}
}

// TestPaperObservations_Slowdown checks the Section V.A overhead study:
// instrumentation costs tens of x, more with stack inclusion and finer
// slices.
func TestPaperObservations_Slowdown(t *testing.T) {
	s := getStudy(t)
	native, err := s.NativeICount()
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	fine, coarse := native/1000, native/16
	rows, err := s.Slowdown([]uint64{fine, coarse})
	if err != nil {
		t.Fatalf("slowdown: %v", err)
	}
	get := func(iv uint64, incl bool) float64 {
		for _, r := range rows {
			if r.Tool == "tQUAD" && r.SliceInterval == iv && r.IncludeStack == incl {
				return r.Slowdown
			}
		}
		t.Fatalf("missing slowdown row iv=%d incl=%v", iv, incl)
		return 0
	}
	for _, iv := range []uint64{fine, coarse} {
		for _, incl := range []bool{true, false} {
			sd := get(iv, incl)
			if sd < 10 || sd > 150 {
				t.Errorf("slowdown(iv=%d, incl=%v) = %.1fx, want within [10,150] (paper: 37.2-68.95)", iv, incl, sd)
			}
		}
	}
	if get(fine, true) <= get(coarse, true) {
		t.Errorf("finer slices should cost more: fine %.1fx <= coarse %.1fx", get(fine, true), get(coarse, true))
	}
	if get(fine, true) <= get(fine, false) {
		t.Errorf("stack inclusion should cost more: incl %.1fx <= excl %.1fx", get(fine, true), get(fine, false))
	}
}

// TestCrossToolConsistency: QUAD's byte totals and tQUAD's temporal sums
// observe the same dynamic instruction stream, so they must agree
// exactly.
func TestCrossToolConsistency(t *testing.T) {
	s := getStudy(t)
	incl, _, err := s.QUAD(true)
	if err != nil {
		t.Fatalf("QUAD: %v", err)
	}
	prof, _, err := s.TQUAD(core.Options{SliceInterval: 50_000, IncludeStack: true})
	if err != nil {
		t.Fatalf("tQUAD: %v", err)
	}
	for _, name := range wfs.KernelNames() {
		q, okQ := incl.Kernel(name)
		k, okT := prof.Kernel(name)
		if !okQ || !okT {
			t.Errorf("kernel %s missing (quad=%v tquad=%v)", name, okQ, okT)
			continue
		}
		if q.In != k.TotalReadIncl {
			t.Errorf("%s: QUAD IN=%d != tQUAD reads=%d", name, q.In, k.TotalReadIncl)
		}
	}
}
