// Fault-injection tests: the toolchain must degrade into clean traps —
// never panics, never silent corruption — when fed damaged binaries or
// hostile configurations.  The TestChaos* suite at the bottom drives the
// experiment scheduler through the deterministic fault injector
// (internal/chaos) and asserts graceful degradation: failed
// configurations are reported precisely, survivors render byte-identical
// to a fault-free sweep, interrupted sweeps leak no temp files, and a
// checkpointed sweep resumes with zero repeated guest executions.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"tquad/internal/chaos"
	"tquad/internal/core"
	"tquad/internal/gos"
	"tquad/internal/image"
	"tquad/internal/obs"
	"tquad/internal/obs/live"
	"tquad/internal/pin"
	"tquad/internal/study"
	"tquad/internal/vm"
	"tquad/internal/wav"
	"tquad/internal/wfs"
)

// runCorrupted loads the WFS program with one code byte flipped and runs
// it under instrumentation, reporting the outcome.
func runCorrupted(t *testing.T, rng *rand.Rand, w *wfs.Workload) (halted bool, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("corrupted binary caused a panic: %v", r)
		}
	}()
	// Clone and corrupt the main image.
	blob := w.Prog.Main.Marshal()
	img, uerr := image.Unmarshal(blob)
	if uerr != nil {
		t.Fatal(uerr)
	}
	off := rng.Intn(len(img.Code))
	img.Code[off] ^= byte(1 << rng.Intn(8))

	m := vm.New()
	osys := gos.New()
	osys.AddFile(w.Cfg.InputFile, wav.Encode(w.Input))
	m.SetSyscallHandler(osys)
	m.LoadImage(img)
	for _, lib := range w.Prog.Libs {
		m.LoadImage(lib)
	}
	m.Reset(w.Prog.EntryPC)
	e := pin.NewEngine(m)
	core.Attach(e, core.Options{SliceInterval: 10_000, IncludeStack: true})
	err = m.Run(100_000_000)
	return m.Halted, err
}

// TestCorruptedBinaryNeverPanics flips random bits in the code segment:
// every outcome must be a clean halt, a typed trap, or fuel exhaustion.
func TestCorruptedBinaryNeverPanics(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31337))
	var halts, traps, fuel int
	for i := 0; i < 30; i++ {
		halted, err := runCorrupted(t, rng, w)
		switch {
		case err == nil && halted:
			halts++
		case errors.Is(err, vm.ErrFuel):
			fuel++
		default:
			var trap *vm.Trap
			if !errors.As(err, &trap) {
				t.Fatalf("trial %d: unexpected outcome halted=%v err=%v", i, halted, err)
			}
			traps++
		}
	}
	t.Logf("30 corrupted runs: %d clean halts, %d traps, %d fuel exhaustions", halts, traps, fuel)
}

// TestTruncatedInputFile: a damaged input WAVE file must surface as a
// guest-level error (non-zero exit), not a crash.
func TestTruncatedInputFile(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	full := wav.Encode(w.Input)
	for _, cut := range []int{0, 10, 44, len(full) / 2} {
		m := vm.New()
		osys := gos.New()
		osys.AddFile(w.Cfg.InputFile, full[:cut])
		m.SetSyscallHandler(osys)
		for _, img := range w.Prog.Images() {
			m.LoadImage(img)
		}
		m.Reset(w.Prog.EntryPC)
		if err := m.Run(wfs.MaxInstr); err != nil {
			t.Fatalf("cut=%d: trap instead of guest error: %v", cut, err)
		}
		if m.ExitCode == 0 {
			t.Errorf("cut=%d: guest reported success on truncated input", cut)
		}
	}
}

// TestMissingInputFile: no input at all.
func TestMissingInputFile(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New()
	m.SetSyscallHandler(gos.New()) // empty file system
	for _, img := range w.Prog.Images() {
		m.LoadImage(img)
	}
	m.Reset(w.Prog.EntryPC)
	if err := m.Run(wfs.MaxInstr); err != nil {
		t.Fatalf("trap instead of guest error: %v", err)
	}
	if m.ExitCode == 0 {
		t.Fatalf("guest reported success without an input file")
	}
}

// TestTinyStackTraps: an undersized stack reservation must produce a
// stack-overflow trap, not memory corruption.
func TestTinyStackTraps(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := w.NewMachine()
	m.StackSize = 64 // absurd
	m.Reset(w.Prog.EntryPC)
	err = m.Run(wfs.MaxInstr)
	var trap *vm.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want stack-overflow trap", err)
	}
}

// ---------------------------------------------------------------------
// Scheduler-level chaos suite (run in isolation via `make chaos`).
// ---------------------------------------------------------------------

var chaosWorkload struct {
	once sync.Once
	s    *study.Study
	err  error
}

// chaosStudy builds the WFS workload once and shares it across the
// chaos tests: the workload is immutable after construction, and every
// scheduler instantiates its own machines from it.
func chaosStudy(t *testing.T) *study.Study {
	t.Helper()
	chaosWorkload.once.Do(func() {
		chaosWorkload.s, chaosWorkload.err = study.New(wfs.Small())
	})
	if chaosWorkload.err != nil {
		t.Fatal(chaosWorkload.err)
	}
	return chaosWorkload.s
}

// chaosConfigs is the sweep the chaos scenarios run: one config per run
// kind, a second tQUAD slice width, and a tQUAD run with the memory
// hierarchy attached (so replay faults also hit the memsim path).
func chaosConfigs() []study.RunConfig {
	return []study.RunConfig{
		{Kind: study.RunNative},
		{Kind: study.RunFlat},
		{Kind: study.RunQUAD, IncludeStack: true},
		{Kind: study.RunTQUAD, SliceInterval: 200_000, IncludeStack: true},
		{Kind: study.RunTQUAD, SliceInterval: 800_000},
		{Kind: study.RunTQUAD, SliceInterval: 200_000, IncludeStack: true,
			Cache: "l1=1k/2/64,l2=8k/4/64"},
	}
}

// renderResult digests one run's full observable outcome — counters plus
// the per-kernel profile totals — so two runs can be compared for
// byte-identity.
func renderResult(res *study.RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s icount=%d overhead=%d time=%d\n", res.Key, res.ICount, res.Overhead, res.Time)
	if res.Flat != nil {
		fmt.Fprintf(&b, "  flat rows=%d\n", len(res.Flat.Rows))
	}
	if res.Quad != nil {
		fmt.Fprintf(&b, "  quad bindings=%d\n", len(res.Quad.Bindings))
	}
	if res.Temporal != nil {
		fmt.Fprintf(&b, "  tquad slices=%d instr=%d\n", res.Temporal.NumSlices, res.Temporal.TotalInstr)
		for _, kp := range res.Temporal.Kernels {
			fmt.Fprintf(&b, "  kernel %s span=%d ri=%d re=%d wi=%d we=%d\n",
				kp.Name, kp.ActivitySpan, kp.TotalReadIncl, kp.TotalReadExcl, kp.TotalWriteIncl, kp.TotalWriteExcl)
		}
	}
	if res.Mem != nil {
		fmt.Fprintf(&b, "  memsim %s accesses=%d offchip=%d memcost=%d\n",
			res.Mem.Config.Key(), res.Mem.Accesses, res.Mem.OffChipBytes(), res.Mem.MemCost)
		for _, kp := range res.Mem.Kernels {
			fmt.Fprintf(&b, "  memkernel %s offchip=%d hits0=%d misses0=%d\n",
				kp.Name, kp.OffChip(), kp.Total.Hits[0], kp.Total.Misses[0])
		}
	}
	return b.String()
}

// chaosBaseline runs the sweep fault-free once and caches each config's
// rendered result.
var chaosBaseline struct {
	once sync.Once
	res  map[string]string
}

func baselineResults(t *testing.T) map[string]string {
	t.Helper()
	chaosBaseline.once.Do(func() {
		sch := study.NewScheduler(chaosStudy(t), 2)
		defer sch.Close()
		out := make(map[string]string)
		for _, cfg := range chaosConfigs() {
			res, err := sch.Run(cfg)
			if err != nil {
				t.Fatalf("baseline %s: %v", cfg.Key(), err)
			}
			out[res.Key] = renderResult(res)
		}
		chaosBaseline.res = out
	})
	return chaosBaseline.res
}

// TestChaosSupervision is the table-driven core of the suite: each
// scenario injects one fault class and asserts that exactly the planned
// configurations fail while every survivor renders byte-identical to
// the fault-free baseline.
func TestChaosSupervision(t *testing.T) {
	quadKey := (study.RunConfig{Kind: study.RunQUAD, IncludeStack: true}).Key()
	scenarios := []struct {
		name       string
		plan       chaos.Plan
		retries    int
		runTimeout time.Duration
		wantFailed []string // keys that must fail; all others must survive
	}{
		{
			name:       "worker panic isolated",
			plan:       chaos.Plan{PanicConfigs: []string{"flat"}},
			wantFailed: []string{"flat"},
		},
		{
			name:       "hung worker hits run timeout",
			plan:       chaos.Plan{HangConfigs: []string{quadKey}},
			runTimeout: 5 * time.Second,
			wantFailed: []string{quadKey},
		},
		{
			name:    "transient failures retried to success",
			plan:    chaos.Plan{FailConfigs: map[string]int{"native": 2, "flat": 1}},
			retries: 3,
		},
		{
			name:    "record I/O fault retried to success",
			plan:    chaos.Plan{RecordFailures: 2, RecordFailAfter: 4096},
			retries: 3,
		},
		{
			name:       "retries exhausted reports failure",
			plan:       chaos.Plan{FailConfigs: map[string]int{"native": 5}},
			retries:    1,
			wantFailed: []string{"native"},
		},
	}
	baseline := baselineResults(t)
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			sch := study.NewScheduler(chaosStudy(t), 2)
			defer sch.Close()
			sch.SetHooks(chaos.New(sc.plan).Hooks())
			sch.SetRetries(sc.retries)
			sch.SetBackoff(time.Millisecond, 4*time.Millisecond)
			if sc.runTimeout > 0 {
				// Prime the shared recording before arming the per-run
				// timeout: the timeout under test targets the hung worker,
				// not the (deliberately long) guest recording.  Policy is
				// snapshotted per submission, so this is race-free.
				if _, err := sch.Run(chaosConfigs()[0]); err != nil {
					t.Fatalf("priming run: %v", err)
				}
				sch.SetRunTimeout(sc.runTimeout)
			}

			var failed []string
			for _, cfg := range chaosConfigs() {
				res, err := sch.Run(cfg)
				key := cfg.Key()
				if err != nil {
					failed = append(failed, key)
					continue
				}
				if got := renderResult(res); got != baseline[key] {
					t.Errorf("survivor %s differs from fault-free baseline:\n%s\nvs\n%s", key, got, baseline[key])
				}
			}
			sort.Strings(failed)
			want := append([]string(nil), sc.wantFailed...)
			sort.Strings(want)
			if fmt.Sprint(failed) != fmt.Sprint(want) {
				t.Errorf("failed configs = %v, want %v", failed, want)
			}
			if errs := sch.Flush(); len(errs) != len(want) {
				t.Errorf("Flush reported %d errors (%v), want %d", len(errs), errs, len(want))
			}
		})
	}
}

// observedChaosScheduler builds a fresh observed study and scheduler so
// each scenario reads supervision counters from a private registry —
// the shared chaosStudy has no observer, so its scheduler's counters
// are no-ops.
func observedChaosScheduler(t *testing.T) (*study.Scheduler, *obs.Observer) {
	t.Helper()
	o := obs.NewObserver()
	s, err := study.NewObserved(wfs.Small(), o)
	if err != nil {
		t.Fatal(err)
	}
	sch := study.NewScheduler(s, 2)
	t.Cleanup(func() { sch.Close() })
	return sch, o
}

// TestChaosSupervisionCountersRetries: the retry counter must equal the
// number of injected transient failures exactly — three faults, three
// retries, zero reported failures.
func TestChaosSupervisionCountersRetries(t *testing.T) {
	sch, o := observedChaosScheduler(t)
	sch.SetHooks(chaos.New(chaos.Plan{FailConfigs: map[string]int{"native": 2, "flat": 1}}).Hooks())
	sch.SetRetries(3)
	sch.SetBackoff(time.Millisecond, 4*time.Millisecond)
	for _, cfg := range []study.RunConfig{{Kind: study.RunNative}, {Kind: study.RunFlat}} {
		if _, err := sch.Run(cfg); err != nil {
			t.Fatalf("%s: %v", cfg.Key(), err)
		}
	}
	reg := o.Registry()
	if got := reg.Counter(obs.MetricSchedRetries).Value(); got != 3 {
		t.Errorf("%s = %d, want 3 (the injected fault count)", obs.MetricSchedRetries, got)
	}
	if got := reg.Counter(obs.MetricSchedFailures).Value(); got != 0 {
		t.Errorf("%s = %d, want 0 (every transient was retried to success)", obs.MetricSchedFailures, got)
	}
	if got := reg.Counter(obs.MetricSchedPanics).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", obs.MetricSchedPanics, got)
	}
}

// TestChaosSupervisionCountersPanic: one injected worker panic must
// count once as a panic and once as a failed run.
func TestChaosSupervisionCountersPanic(t *testing.T) {
	sch, o := observedChaosScheduler(t)
	sch.SetHooks(chaos.New(chaos.Plan{PanicConfigs: []string{"flat"}}).Hooks())
	if _, err := sch.Run(study.RunConfig{Kind: study.RunFlat}); err == nil {
		t.Fatal("panicking run succeeded")
	}
	reg := o.Registry()
	if got := reg.Counter(obs.MetricSchedPanics).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedPanics, got)
	}
	if got := reg.Counter(obs.MetricSchedFailures).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedFailures, got)
	}
}

// TestChaosSupervisionCountersTimeout: a hung run killed by the per-run
// timeout is a permanent failure — one failure, zero retries.
func TestChaosSupervisionCountersTimeout(t *testing.T) {
	quad := study.RunConfig{Kind: study.RunQUAD, IncludeStack: true}
	sch, o := observedChaosScheduler(t)
	sch.SetHooks(chaos.New(chaos.Plan{HangConfigs: []string{quad.Key()}}).Hooks())
	sch.SetRetries(2)
	sch.SetBackoff(time.Millisecond, 4*time.Millisecond)
	// Prime the shared recording before arming the per-run timeout: the
	// timeout under test targets the hung worker, not the recording.
	if _, err := sch.Run(study.RunConfig{Kind: study.RunNative}); err != nil {
		t.Fatalf("priming run: %v", err)
	}
	sch.SetRunTimeout(500 * time.Millisecond)
	if _, err := sch.Run(quad); err == nil {
		t.Fatal("hung run succeeded")
	}
	reg := o.Registry()
	if got := reg.Counter(obs.MetricSchedFailures).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedFailures, got)
	}
	if got := reg.Counter(obs.MetricSchedRetries).Value(); got != 0 {
		t.Errorf("%s = %d, want 0 (timeouts must not retry)", obs.MetricSchedRetries, got)
	}
}

// TestChaosStallDetection is the live-observability acceptance path: a
// hung run must be flagged as stalled — a `stalled` event on the bus
// plus a tquad_sched_stalled_total increment — while the run is still
// in flight, well before its run timeout kills it.
func TestChaosStallDetection(t *testing.T) {
	quad := study.RunConfig{Kind: study.RunQUAD, IncludeStack: true}
	sch, o := observedChaosScheduler(t)
	tracker := live.NewTracker(live.TrackerOptions{
		Registry:    o.Registry(),
		StallWindow: 100 * time.Millisecond,
	})
	defer tracker.Close()
	sch.SetEvents(tracker)
	sch.SetHooks(chaos.New(chaos.Plan{HangConfigs: []string{quad.Key()}}).Hooks())

	// Prime the shared recording, then arm a timeout comfortably longer
	// than the stall window: the stalled flag must win the race.
	if _, err := sch.Run(study.RunConfig{Kind: study.RunNative}); err != nil {
		t.Fatalf("priming run: %v", err)
	}
	sch.SetRunTimeout(2 * time.Second)

	sub := tracker.Bus().Subscribe()
	defer sub.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := sch.Run(quad)
		errc <- err
	}()

	deadline := time.After(1500 * time.Millisecond)
	for stalled := false; !stalled; {
		select {
		case ev := <-sub.Events():
			stalled = ev.Type == obs.EventStalled && ev.Key == quad.Key()
		case err := <-errc:
			t.Fatalf("run finished (err=%v) before a stalled event appeared", err)
		case <-deadline:
			t.Fatal("no stalled event within 1.5s (window 100ms)")
		}
	}
	if got := o.Registry().Counter(obs.MetricSchedStalled).Value(); got == 0 {
		t.Errorf("stalled event seen but %s = 0", obs.MetricSchedStalled)
	}
	if err := <-errc; err == nil {
		t.Fatal("hung run reported success")
	}
}

// TestChaosPanicErrorCarriesStack: a recovered worker panic surfaces as
// a *study.PanicError with the panicking goroutine's stack attached.
func TestChaosPanicErrorCarriesStack(t *testing.T) {
	sch := study.NewScheduler(chaosStudy(t), 2)
	defer sch.Close()
	sch.SetHooks(chaos.New(chaos.Plan{PanicConfigs: []string{"native"}}).Hooks())
	_, err := sch.Run(study.RunConfig{Kind: study.RunNative})
	var pe *study.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *study.PanicError", err)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Error("panic error carries no stack trace")
	}
}

// TestChaosGuestTrapFailsSweep: a deterministic guest trap at
// instruction N kills the shared recording permanently — every config
// fails, nothing retries (the guest is deterministic), and the injected
// fault is identifiable in every reported error.
func TestChaosGuestTrapFailsSweep(t *testing.T) {
	sch := study.NewScheduler(chaosStudy(t), 2)
	defer sch.Close()
	sch.SetHooks(chaos.New(chaos.Plan{TrapAt: 100_000}).Hooks())
	sch.SetRetries(3)
	sch.SetBackoff(time.Millisecond, 4*time.Millisecond)
	for _, cfg := range chaosConfigs() {
		if _, err := sch.Run(cfg); !errors.Is(err, chaos.ErrInjected) {
			t.Errorf("%s: err = %v, want injected trap", cfg.Key(), err)
		}
	}
	if n := sch.GuestExecutions(); n != 1 {
		t.Errorf("guest executed %d times, want 1 (permanent faults must not retry)", n)
	}
}

// TestChaosTruncatedReplay: a torn trace stream fails every replay
// cleanly — no panics, errors for all configs.
func TestChaosTruncatedReplay(t *testing.T) {
	sch := study.NewScheduler(chaosStudy(t), 2)
	defer sch.Close()
	sch.SetHooks(chaos.New(chaos.Plan{ReplayTruncate: 64}).Hooks())
	for _, cfg := range chaosConfigs() {
		if _, err := sch.Run(cfg); err == nil {
			t.Errorf("%s succeeded on a truncated trace", cfg.Key())
		}
	}
}

// TestChaosMidSweepCancellation: cancelling the sweep context mid-record
// fails every pending config with a cancellation error and leaves zero
// temp files behind — the interrupted recording is removed immediately,
// not at Close.
func TestChaosMidSweepCancellation(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sch := study.NewScheduler(chaosStudy(t), 2)
	sch.SetContext(ctx)
	// Deterministic mid-record cancellation: the recording's own machine
	// pulls the plug once the guest is demonstrably mid-flight.
	sch.SetHooks(study.Hooks{
		Machine: func(_ context.Context, m *vm.Machine) {
			m.Watchdog = func(m *vm.Machine) error {
				if m.ICount >= 200_000 {
					cancel()
				}
				return nil
			}
		},
	})
	for _, cfg := range chaosConfigs() {
		_, err := sch.Run(cfg)
		if err == nil {
			t.Fatalf("%s succeeded under cancellation", cfg.Key())
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want a context.Canceled chain", cfg.Key(), err)
		}
	}
	sch.Close()

	ents, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("leaked temp file after cancelled sweep: %s", e.Name())
	}
}

// TestChaosCheckpointResume: a checkpointed sweep, "killed" and rerun
// against the same journal from a fresh scheduler, re-executes zero
// guest instructions — recordings come from the persisted trace, and
// completed configs are journalled — while producing byte-identical
// results.
func TestChaosCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	baseline := baselineResults(t)
	cfgs := chaosConfigs()

	// First invocation: completes only part of the sweep before the
	// process "dies" (we simply stop submitting).
	ck1, err := study.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sch1 := study.NewScheduler(chaosStudy(t), 2)
	sch1.SetCheckpoint(ck1)
	for _, cfg := range cfgs[:2] {
		if _, err := sch1.Run(cfg); err != nil {
			t.Fatalf("first sweep %s: %v", cfg.Key(), err)
		}
	}
	sch1.Close()
	if err := ck1.Close(); err != nil {
		t.Fatal(err)
	}
	if n := sch1.GuestExecutions(); n != 1 {
		t.Fatalf("first sweep executed the guest %d times, want 1", n)
	}

	// Second invocation: fresh scheduler, same journal, full sweep.  The
	// two completed configs are already journalled, the recording is
	// served from the persisted trace, and the guest never runs again.
	ck2, err := study.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	for _, cfg := range cfgs[:2] {
		if !ck2.Done(cfg.Key()) {
			t.Errorf("resumed journal missing completed config %s", cfg.Key())
		}
	}
	sch2 := study.NewScheduler(chaosStudy(t), 2)
	defer sch2.Close()
	sch2.SetCheckpoint(ck2)
	for _, cfg := range cfgs {
		res, err := sch2.Run(cfg)
		if err != nil {
			t.Fatalf("resumed sweep %s: %v", cfg.Key(), err)
		}
		if got := renderResult(res); got != baseline[cfg.Key()] {
			t.Errorf("resumed %s differs from baseline:\n%s\nvs\n%s", cfg.Key(), got, baseline[cfg.Key()])
		}
	}
	if n := sch2.GuestExecutions(); n != 0 {
		t.Errorf("resumed sweep executed the guest %d times, want 0", n)
	}
	if got := len(ck2.Completed()); got != len(cfgs) {
		t.Errorf("journal holds %d completed configs, want %d", got, len(cfgs))
	}
}

// TestChaosBlockEngineParity: the cache-bearing sweep forced onto the
// reference interpreter renders byte-identical to the default
// (block-engine) baseline — engine choice must never leak into any
// profile, simulator report, or counter a sweep produces.
func TestChaosBlockEngineParity(t *testing.T) {
	baseline := baselineResults(t)
	sch := study.NewScheduler(chaosStudy(t), 2)
	defer sch.Close()
	interpreted := 0
	sch.SetHooks(study.Hooks{
		Machine: func(_ context.Context, m *vm.Machine) {
			m.BlockEngine = false
			interpreted++
		},
	})
	for _, cfg := range chaosConfigs() {
		res, err := sch.Run(cfg)
		if err != nil {
			t.Fatalf("%s on interpreter: %v", cfg.Key(), err)
		}
		if got := renderResult(res); got != baseline[cfg.Key()] {
			t.Errorf("interpreter %s differs from block-engine baseline:\n%s\nvs\n%s",
				cfg.Key(), got, baseline[cfg.Key()])
		}
	}
	if interpreted == 0 {
		t.Fatal("machine hook never ran: sweep did not execute a guest")
	}
}

// TestChaosBlockEngineKillResume: a cache-bearing checkpointed sweep
// running on the block engine — with sealed blocks warm in the recording
// machine — is "killed" (cancelled mid-record) on its first invocation;
// the rerun completes the whole sweep, a third invocation replays it
// with zero guest executions, and none of the three invocations leaves
// a temp file behind.
func TestChaosBlockEngineKillResume(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	baseline := baselineResults(t)
	dir := t.TempDir()
	cfgs := chaosConfigs()

	// Pass 1: the recording run is cancelled while a block-engine
	// machine is demonstrably mid-flight (the watchdog only fires at
	// block boundaries, so a firing proves compiled blocks are
	// executing).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ck1, err := study.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sch1 := study.NewScheduler(chaosStudy(t), 2)
	sch1.SetContext(ctx)
	sch1.SetCheckpoint(ck1)
	fired := false
	sch1.SetHooks(study.Hooks{
		Machine: func(_ context.Context, m *vm.Machine) {
			if !m.BlockEngine {
				t.Error("sweep machine not on the block engine")
			}
			m.Watchdog = func(m *vm.Machine) error {
				if m.ICount >= 200_000 {
					fired = true
					cancel()
				}
				return nil
			}
		},
	})
	if _, err := sch1.Run(cfgs[3]); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed recording run: err = %v, want context.Canceled", err)
	}
	if !fired {
		t.Fatal("watchdog never fired: no compiled blocks executed before the kill")
	}
	sch1.Close()
	if err := ck1.Close(); err != nil {
		t.Fatal(err)
	}

	// Pass 2: fresh scheduler, same journal; the aborted recording was
	// not journalled, so the sweep re-records once and completes.
	ck2, err := study.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sch2 := study.NewScheduler(chaosStudy(t), 2)
	sch2.SetCheckpoint(ck2)
	for _, cfg := range cfgs {
		res, err := sch2.Run(cfg)
		if err != nil {
			t.Fatalf("resumed sweep %s: %v", cfg.Key(), err)
		}
		if got := renderResult(res); got != baseline[cfg.Key()] {
			t.Errorf("resumed %s differs from baseline:\n%s\nvs\n%s", cfg.Key(), got, baseline[cfg.Key()])
		}
	}
	if n := sch2.GuestExecutions(); n != 1 {
		t.Errorf("resumed sweep executed the guest %d times, want 1 (the re-recording)", n)
	}
	sch2.Close()
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}

	// Pass 3: everything journalled; the sweep replays without running
	// the guest at all.
	ck3, err := study.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	sch3 := study.NewScheduler(chaosStudy(t), 2)
	defer sch3.Close()
	sch3.SetCheckpoint(ck3)
	for _, cfg := range cfgs {
		res, err := sch3.Run(cfg)
		if err != nil {
			t.Fatalf("replayed sweep %s: %v", cfg.Key(), err)
		}
		if got := renderResult(res); got != baseline[cfg.Key()] {
			t.Errorf("replayed %s differs from baseline:\n%s\nvs\n%s", cfg.Key(), got, baseline[cfg.Key()])
		}
	}
	if n := sch3.GuestExecutions(); n != 0 {
		t.Errorf("replayed sweep executed the guest %d times, want 0", n)
	}

	ents, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("leaked temp file after kill-and-resume sweep: %s", e.Name())
	}
}
