// Fault-injection tests: the toolchain must degrade into clean traps —
// never panics, never silent corruption — when fed damaged binaries or
// hostile configurations.
package repro_test

import (
	"errors"
	"math/rand"
	"testing"

	"tquad/internal/core"
	"tquad/internal/gos"
	"tquad/internal/image"
	"tquad/internal/pin"
	"tquad/internal/vm"
	"tquad/internal/wav"
	"tquad/internal/wfs"
)

// runCorrupted loads the WFS program with one code byte flipped and runs
// it under instrumentation, reporting the outcome.
func runCorrupted(t *testing.T, rng *rand.Rand, w *wfs.Workload) (halted bool, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("corrupted binary caused a panic: %v", r)
		}
	}()
	// Clone and corrupt the main image.
	blob := w.Prog.Main.Marshal()
	img, uerr := image.Unmarshal(blob)
	if uerr != nil {
		t.Fatal(uerr)
	}
	off := rng.Intn(len(img.Code))
	img.Code[off] ^= byte(1 << rng.Intn(8))

	m := vm.New()
	osys := gos.New()
	osys.AddFile(w.Cfg.InputFile, wav.Encode(w.Input))
	m.SetSyscallHandler(osys)
	m.LoadImage(img)
	for _, lib := range w.Prog.Libs {
		m.LoadImage(lib)
	}
	m.Reset(w.Prog.EntryPC)
	e := pin.NewEngine(m)
	core.Attach(e, core.Options{SliceInterval: 10_000, IncludeStack: true})
	err = m.Run(100_000_000)
	return m.Halted, err
}

// TestCorruptedBinaryNeverPanics flips random bits in the code segment:
// every outcome must be a clean halt, a typed trap, or fuel exhaustion.
func TestCorruptedBinaryNeverPanics(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31337))
	var halts, traps, fuel int
	for i := 0; i < 30; i++ {
		halted, err := runCorrupted(t, rng, w)
		switch {
		case err == nil && halted:
			halts++
		case errors.Is(err, vm.ErrFuel):
			fuel++
		default:
			var trap *vm.Trap
			if !errors.As(err, &trap) {
				t.Fatalf("trial %d: unexpected outcome halted=%v err=%v", i, halted, err)
			}
			traps++
		}
	}
	t.Logf("30 corrupted runs: %d clean halts, %d traps, %d fuel exhaustions", halts, traps, fuel)
}

// TestTruncatedInputFile: a damaged input WAVE file must surface as a
// guest-level error (non-zero exit), not a crash.
func TestTruncatedInputFile(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	full := wav.Encode(w.Input)
	for _, cut := range []int{0, 10, 44, len(full) / 2} {
		m := vm.New()
		osys := gos.New()
		osys.AddFile(w.Cfg.InputFile, full[:cut])
		m.SetSyscallHandler(osys)
		for _, img := range w.Prog.Images() {
			m.LoadImage(img)
		}
		m.Reset(w.Prog.EntryPC)
		if err := m.Run(wfs.MaxInstr); err != nil {
			t.Fatalf("cut=%d: trap instead of guest error: %v", cut, err)
		}
		if m.ExitCode == 0 {
			t.Errorf("cut=%d: guest reported success on truncated input", cut)
		}
	}
}

// TestMissingInputFile: no input at all.
func TestMissingInputFile(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New()
	m.SetSyscallHandler(gos.New()) // empty file system
	for _, img := range w.Prog.Images() {
		m.LoadImage(img)
	}
	m.Reset(w.Prog.EntryPC)
	if err := m.Run(wfs.MaxInstr); err != nil {
		t.Fatalf("trap instead of guest error: %v", err)
	}
	if m.ExitCode == 0 {
		t.Fatalf("guest reported success without an input file")
	}
}

// TestTinyStackTraps: an undersized stack reservation must produce a
// stack-overflow trap, not memory corruption.
func TestTinyStackTraps(t *testing.T) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := w.NewMachine()
	m.StackSize = 64 // absurd
	m.Reset(w.Prog.EntryPC)
	err = m.Run(wfs.MaxInstr)
	var trap *vm.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v, want stack-overflow trap", err)
	}
}
