# Standard developer entry points; see README.md ("Development").
GO ?= go

# Every test invocation carries an explicit -timeout: a hung test (the
# exact failure mode the supervision layer exists to catch) should kill
# the run loudly, not stall CI at the default 10 minutes per package.
TEST_TIMEOUT ?= 300s

.PHONY: build test vet race chaos fuzz bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

vet:
	$(GO) vet ./...

# Race-hammers the observability layer (shared metrics registry + tracer),
# the parallel experiment scheduler (a full concurrent study sweep) and the
# event-trace recorder/replayer it drives.
race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/obs/... ./internal/study/... ./internal/etrace/...

# The chaos suite: drives full scheduler sweeps through the deterministic
# fault injector (internal/chaos) under the race detector — worker panics,
# hangs, trace I/O faults, guest traps, mid-sweep cancellation and
# checkpoint resume must all degrade gracefully.
chaos:
	$(GO) test -race -timeout $(TEST_TIMEOUT) -run 'TestChaos' -v .
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/chaos/...

# Short fuzzing budgets for the binary-format parsers: the event-trace
# decoder and the JSON profile envelope.  Neither may panic on any input.
fuzz:
	$(GO) test -run xxx -fuzz FuzzReplay -fuzztime 10s ./internal/etrace
	$(GO) test -run xxx -fuzz FuzzLoad -fuzztime 10s ./internal/trace

# One pass over every table/figure benchmark plus the obs on/off pair.
bench:
	$(GO) test -bench . -benchtime 1x

# Same pass, recorded as a dated machine-readable log (go test -json).
bench-json:
	$(GO) test -bench . -benchtime 1x -json > BENCH_$(shell date +%Y-%m-%d).json
