# Standard developer entry points; see README.md ("Development").
GO ?= go

.PHONY: build test vet race fuzz bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-hammers the observability layer (shared metrics registry + tracer),
# the parallel experiment scheduler (a full concurrent study sweep) and the
# event-trace recorder/replayer it drives.
race:
	$(GO) test -race ./internal/obs/... ./internal/study/... ./internal/etrace/...

# Short fuzzing budgets for the binary-format parsers: the event-trace
# decoder and the JSON profile envelope.  Neither may panic on any input.
fuzz:
	$(GO) test -run xxx -fuzz FuzzReplay -fuzztime 10s ./internal/etrace
	$(GO) test -run xxx -fuzz FuzzLoad -fuzztime 10s ./internal/trace

# One pass over every table/figure benchmark plus the obs on/off pair.
bench:
	$(GO) test -bench . -benchtime 1x

# Same pass, recorded as a dated machine-readable log (go test -json).
bench-json:
	$(GO) test -bench . -benchtime 1x -json > BENCH_$(shell date +%Y-%m-%d).json
