# Standard developer entry points; see README.md ("Development").
GO ?= go

# Every test invocation carries an explicit -timeout: a hung test (the
# exact failure mode the supervision layer exists to catch) should kill
# the run loudly, not stall CI at the default 10 minutes per package.
TEST_TIMEOUT ?= 300s

.PHONY: build test vet race chaos corrupt fuzz bench bench-json bench-compare jobd-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

vet:
	$(GO) vet ./...

# Race-hammers the observability layer (shared metrics registry + tracer),
# the parallel experiment scheduler (a full concurrent study sweep, cache
# sweeps included), the event-trace recorder/replayer it drives, the
# memory-hierarchy simulator attached across worker threads, the block
# execution engine (per-machine caches on concurrent sweep workers), the
# job daemon (worker pool + journal + HTTP surface) and the cache-bearing
# block-engine kill/cancel/resume sweep at the root.
race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/obs/... ./internal/study/... ./internal/etrace/... ./internal/memsim/... ./internal/vm/... ./internal/jobd/...
	$(GO) test -race -timeout $(TEST_TIMEOUT) -run 'TestChaosBlockEngine|TestChaosMidSweepCancellation' .

# The chaos suite: drives full scheduler sweeps through the deterministic
# fault injector (internal/chaos) under the race detector — worker panics,
# hangs, trace I/O faults, disk corruption (bit flips, torn tails,
# ENOSPC), guest traps, mid-sweep cancellation and checkpoint resume must
# all degrade gracefully.
chaos:
	$(GO) test -race -timeout $(TEST_TIMEOUT) -run 'TestChaos' -v .
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/chaos/...

# The trace-integrity gate: the etrace corruption matrix (every fault
# class × every replay mode — detected or byte-identical, never silent
# divergence), the format-generation compat suite, and the end-to-end
# rerecord-on-corrupt scheduler scenarios.
corrupt:
	$(GO) test -timeout $(TEST_TIMEOUT) -run 'TestCorruptionMatrix|TestSalvageAccounting|TestFormatGenerations|TestStatReportsGenerations' -v ./internal/etrace
	$(GO) test -timeout $(TEST_TIMEOUT) -run 'TestChaosCorrupt|TestChaosENOSPC|TestChaosTornTail' -v .

# Short fuzzing budgets for the text/binary-format parsers: the
# event-trace decoder, the salvage replay paths, the indexed parallel
# replay pipeline, the JSON profile envelope and the cache-geometry
# grammar.  None may panic on any input.
fuzz:
	$(GO) test -run xxx -fuzz FuzzReplay -fuzztime 10s ./internal/etrace
	$(GO) test -run xxx -fuzz FuzzSalvage -fuzztime 10s ./internal/etrace
	$(GO) test -run xxx -fuzz FuzzIndex -fuzztime 10s ./internal/etrace
	$(GO) test -run xxx -fuzz FuzzLoad -fuzztime 10s ./internal/trace
	$(GO) test -run xxx -fuzz FuzzCacheConfig -fuzztime 10s ./internal/memsim

# One pass over every table/figure benchmark, the obs on/off pair, the
# cache-geometry sweep and the simulator hot path.
bench:
	$(GO) test -bench . -benchtime 1x
	$(GO) test -bench BenchmarkMemSim -benchtime 1x ./internal/memsim

# Same pass, recorded as a dated machine-readable log (go test -json).
# The date is evaluated once (a := variable) so a run straddling
# midnight cannot split the log across two files, and both passes write
# through a single compound redirect so the file is either the complete
# two-pass log or (on failure) removed — never an interleaved or
# truncated JSON stream.  Same-day reruns never clobber an earlier log:
# they write BENCH_<date>.2.json, .3.json, … which cmd/benchcmp orders
# after the base file.
BENCH_DATE := $(shell date +%Y-%m-%d)
bench-json:
	@f=BENCH_$(BENCH_DATE).json; n=2; \
	while [ -e $$f ]; do f=BENCH_$(BENCH_DATE).$$n.json; n=$$((n+1)); done; \
	echo "writing $$f"; \
	{ $(GO) test -bench . -benchtime 1x -json && \
	  $(GO) test -bench BenchmarkMemSim -benchtime 1x -json ./internal/memsim; } > $$f \
	  || { rm -f $$f; exit 1; }

# Per-benchmark deltas between the two newest BENCH_*.json logs.
bench-compare:
	$(GO) run ./cmd/benchcmp

# The analysis-daemon gate: end-to-end HTTP submit → succeeded → artifact
# byte-identity against cmd/tquad's golden sweep, plus the kill/resume
# durability contract (SIGKILL-equivalent teardown, restart, zero guest
# re-execution, identical artifacts).
jobd-smoke:
	$(GO) test -timeout $(TEST_TIMEOUT) -run 'TestDaemonServiceSmoke|TestChaosDaemonKillResume' -v .
	$(GO) test -timeout $(TEST_TIMEOUT) ./internal/jobd/...

# One-shot pre-merge gate: build, vet, the full test suite, the
# race-detector pass over the concurrency-heavy packages, and the
# trace-integrity gate.
verify: build vet test race corrupt
