# Standard developer entry points; see README.md ("Development").
GO ?= go

.PHONY: build test vet race bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-hammers the observability layer (shared metrics registry + tracer)
# and the parallel experiment scheduler (a full concurrent study sweep).
race:
	$(GO) test -race ./internal/obs/... ./internal/study/...

# One pass over every table/figure benchmark plus the obs on/off pair.
bench:
	$(GO) test -bench . -benchtime 1x

# Same pass, recorded as a dated machine-readable log (go test -json).
bench-json:
	$(GO) test -bench . -benchtime 1x -json > BENCH_$(shell date +%Y-%m-%d).json
