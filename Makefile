# Standard developer entry points; see README.md ("Development").
GO ?= go

.PHONY: build test vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-hammers the observability layer (shared metrics registry + tracer).
race:
	$(GO) test -race ./internal/obs/...

# One pass over every table/figure benchmark plus the obs on/off pair.
bench:
	$(GO) test -bench . -benchtime 1x
