// Live-monitoring smoke test: boots the whole -serve stack in-process —
// metrics registry, run tracker, embedded HTTP server — exactly the way
// the CLIs wire it, runs a small sweep against it, and checks every
// operator-facing surface end to end: /metrics scrapes, /events streams
// at least one lifecycle event while the sweep runs, and the progress
// page renders the completed run with its bandwidth chart.
package repro_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tquad/internal/obs"
	"tquad/internal/obs/live"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestLiveMonitoringSmoke(t *testing.T) {
	o := obs.NewObserver()
	tracker := live.NewTracker(live.TrackerOptions{
		Registry:    o.Registry(),
		StallWindow: time.Second,
	})
	defer tracker.Close()
	chart := live.NewChartData("effective bandwidth of completed runs", "B/instr")
	srv, err := live.Serve("127.0.0.1:0", live.Options{
		Registry: o.Registry(),
		Tracker:  tracker,
		Chart:    chart.SVG,
		Title:    "smoke",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Attach the event stream before the sweep starts so the line read
	// below is a live event, streamed while the run is in flight.
	stream, err := http.Get(srv.URL() + "/events?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stream.Body)
		if sc.Scan() {
			lines <- sc.Text()
		}
	}()

	s, err := study.NewObserved(wfs.Small(), o)
	if err != nil {
		t.Fatal(err)
	}
	sch := study.NewScheduler(s, 2)
	defer sch.Close()
	sch.SetEvents(tracker)
	cfg := study.RunConfig{Kind: study.RunTQUAD, SliceInterval: 400_000, IncludeStack: true}
	res, err := sch.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chart.Add(res.Key, study.EffectiveBandwidth(res.Temporal))

	select {
	case line := <-lines:
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event stream line %q: %v", line, err)
		}
		if ev.Type == "" || ev.Key == "" {
			t.Errorf("streamed event missing type or key: %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event streamed within 5s of a completed run")
	}

	metrics := httpGetBody(t, srv.URL()+"/metrics")
	for _, name := range []string{live.MetricLiveEvents, live.MetricLiveHeartbeats} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics is missing %s:\n%s", name, metrics)
		}
	}

	page := httpGetBody(t, srv.URL()+"/")
	if !strings.Contains(page, cfg.Key()) {
		t.Errorf("progress page does not list the completed run %q", cfg.Key())
	}
	if !strings.Contains(page, "<svg") {
		t.Error("progress page has no bandwidth chart despite a completed run")
	}
}
