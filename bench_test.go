// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus the slowdown study and the ablations
// called out in DESIGN.md.  Each benchmark runs the full case-study
// configuration (wfs.Study: one primary source, thirty-two speakers) and
// reports the headline quantities as custom metrics; run with -v to see
// the rendered tables, and see cmd/wfsstudy + EXPERIMENTS.md for the
// complete output.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"tquad/internal/core"
	"tquad/internal/etrace"
	"tquad/internal/imgproc"
	"tquad/internal/obs"
	"tquad/internal/obs/live"
	"tquad/internal/pin"
	"tquad/internal/shadow"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

var (
	benchOnce sync.Once
	benchS    *study.Study
)

// benchStudy lazily builds the shared Study-configuration workload.
func benchStudy(b *testing.B) *study.Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := study.New(wfs.Study())
		if err != nil {
			b.Fatalf("study: %v", err)
		}
		benchS = s
	})
	return benchS
}

// BenchmarkTableI_FlatProfile regenerates the gprof flat profile of the
// WFS application (paper Table I).
func BenchmarkTableI_FlatProfile(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		p, err := s.FlatProfile()
		if err != nil {
			b.Fatalf("flat profile: %v", err)
		}
		if i == 0 {
			b.Logf("Table I\n%s", study.RenderTableI(p))
			ws, _ := p.Row("wav_store")
			ff, _ := p.Row("fft1d")
			b.ReportMetric(ws.Pct, "wav_store_%time")
			b.ReportMetric(ff.Pct, "fft1d_%time")
		}
	}
}

// BenchmarkTableII_QUAD regenerates the producer/consumer summary (paper
// Table II), both stack modes.
func BenchmarkTableII_QUAD(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		excl, _, err := s.QUAD(false)
		if err != nil {
			b.Fatalf("QUAD excl: %v", err)
		}
		incl, _, err := s.QUAD(true)
		if err != nil {
			b.Fatalf("QUAD incl: %v", err)
		}
		if i == 0 {
			b.Logf("Table II\n%s", study.RenderTableII(excl, incl))
			sf, _ := excl.Kernel("AudioIo_setFrames")
			b.ReportMetric(float64(sf.Out), "setFrames_OUT_bytes")
			b.ReportMetric(float64(sf.OutUnMA), "setFrames_OUT_UnMA")
		}
	}
}

// BenchmarkTableIII_InstrumentedProfile regenerates the flat profile of
// the QUAD-instrumented binary (paper Table III).
func BenchmarkTableIII_InstrumentedProfile(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		base, instr, err := s.InstrumentedFlat()
		if err != nil {
			b.Fatalf("instrumented flat: %v", err)
		}
		if i == 0 {
			b.Logf("Table III\n%s", study.RenderTableIII(base, instr))
			sf, _ := instr.Row("AudioIo_setFrames")
			b.ReportMetric(sf.Pct, "setFrames_instr_%time")
		}
	}
}

// BenchmarkFigure6_ReadBandwidth regenerates the temporal read-bandwidth
// graph, stack included, ~64 slices (paper Figure 6).
func BenchmarkFigure6_ReadBandwidth(b *testing.B) {
	s := benchStudy(b)
	iv, err := s.SliceForCount(64)
	if err != nil {
		b.Fatalf("slice: %v", err)
	}
	for i := 0; i < b.N; i++ {
		prof, _, err := s.TQUAD(core.Options{SliceInterval: iv, IncludeStack: true})
		if err != nil {
			b.Fatalf("tQUAD: %v", err)
		}
		if i == 0 {
			b.Logf("Figure 6\n%s", study.RenderFigure(
				"memory bandwidth usage, reads, stack included (top ten kernels)",
				prof, wfs.TopTenKernels(), true, true, 64))
			ws, _ := prof.Kernel("wav_store")
			b.ReportMetric(float64(prof.NumSlices), "slices")
			b.ReportMetric(float64(ws.FirstSlice)/float64(prof.NumSlices), "wav_store_start_frac")
		}
	}
}

// BenchmarkFigure7_WriteBandwidth regenerates the temporal
// write-bandwidth graph, stack excluded, ~256 slices (paper Figure 7).
func BenchmarkFigure7_WriteBandwidth(b *testing.B) {
	s := benchStudy(b)
	iv, err := s.SliceForCount(256)
	if err != nil {
		b.Fatalf("slice: %v", err)
	}
	for i := 0; i < b.N; i++ {
		prof, _, err := s.TQUAD(core.Options{SliceInterval: iv, IncludeStack: true})
		if err != nil {
			b.Fatalf("tQUAD: %v", err)
		}
		if i == 0 {
			// The paper cuts the second half off (only wav_store is
			// active); the renderer shows the full run.
			b.Logf("Figure 7\n%s", study.RenderFigure(
				"memory bandwidth usage, writes, stack excluded (last ten kernels)",
				prof, wfs.LastTenKernels(), false, false, 128))
			b.ReportMetric(float64(prof.NumSlices), "slices")
		}
	}
}

// BenchmarkTableIV_Phases regenerates the phase table (paper Table IV):
// fine slices, phase detection, per-kernel bandwidth statistics.
func BenchmarkTableIV_Phases(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		phases, prof, err := s.Phases(5000)
		if err != nil {
			b.Fatalf("phases: %v", err)
		}
		if i == 0 {
			b.Logf("Table IV\n%s", study.RenderTableIV(phases, prof.NumSlices))
			b.ReportMetric(float64(len(phases)), "phases")
			if len(phases) == 5 {
				b.ReportMetric(float64(phases[4].Span())/float64(prof.NumSlices), "wave_save_span_frac")
			}
		}
	}
}

// BenchmarkSlowdown_BySlice sweeps the tQUAD configuration grid and
// reports the simulated slowdown spread (paper Section V.A: 37.2x-68.95x
// depending on the time slice and the stack option).
func BenchmarkSlowdown_BySlice(b *testing.B) {
	s := benchStudy(b)
	native, err := s.NativeICount()
	if err != nil {
		b.Fatalf("native: %v", err)
	}
	ivs := []uint64{native / 2000, native / 64, native / 16}
	for i := 0; i < b.N; i++ {
		rows, err := s.Slowdown(ivs)
		if err != nil {
			b.Fatalf("slowdown: %v", err)
		}
		if i == 0 {
			b.Logf("Slowdown\n%s", study.RenderSlowdown(rows))
			min, max := rows[0].Slowdown, rows[0].Slowdown
			for _, r := range rows {
				if r.Tool != "tQUAD" {
					continue
				}
				if r.Slowdown < min {
					min = r.Slowdown
				}
				if r.Slowdown > max {
					max = r.Slowdown
				}
			}
			b.ReportMetric(min, "slowdown_min_x")
			b.ReportMetric(max, "slowdown_max_x")
		}
	}
}

// BenchmarkStudyParallel measures the parallel experiment scheduler on
// the Section V.A sweep at increasing parallelism.  Every sub-benchmark
// executes the identical configuration grid on a fresh scheduler (no
// memoisation carry-over between iterations); on a multi-core runner the
// wall-clock per sweep drops as jobs rises, and the rendered rows are
// byte-identical at every level (asserted by the tests in
// internal/study).
func BenchmarkStudyParallel(b *testing.B) {
	s := benchStudy(b)
	native, err := s.NativeICount()
	if err != nil {
		b.Fatalf("native: %v", err)
	}
	ivs := []uint64{native / 64, native / 16}
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := s.SlowdownParallel(ivs, jobs)
				if err != nil {
					b.Fatalf("sweep: %v", err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(rows)), "rows")
				}
			}
		})
	}
}

// BenchmarkSliceAccum is the accumulator ablation: a full tQUAD run of
// the case-study workload with the dense append-only slice series
// against the original map-per-kernel accumulator
// (Options.UseMapAccum).  Both produce identical profiles (asserted in
// internal/core); the dense path drops the per-event map lookup and the
// per-event slice division.
func BenchmarkSliceAccum(b *testing.B) {
	s := benchStudy(b)
	for _, useMap := range []bool{false, true} {
		name := "dense"
		if useMap {
			name = "map"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, _ := s.W.NewMachine()
				e := pin.NewEngine(m)
				tool := core.Attach(e, core.Options{
					SliceInterval: 5000,
					IncludeStack:  true,
					UseMapAccum:   useMap,
				})
				if err := m.Run(wfs.MaxInstr); err != nil {
					b.Fatalf("run: %v", err)
				}
				if i == 0 {
					prof := tool.Snapshot()
					b.ReportMetric(float64(prof.TotalInstr), "guest_instructions")
					b.ReportMetric(float64(prof.NumSlices), "slices")
				}
			}
		})
	}
}

// BenchmarkNativeExecution measures raw interpreter throughput on the
// case-study workload (the slowdown baseline).
func BenchmarkNativeExecution(b *testing.B) {
	s := benchStudy(b)
	var instr uint64
	for i := 0; i < b.N; i++ {
		m, _ := s.W.NewMachine()
		if err := m.Run(wfs.MaxInstr); err != nil {
			b.Fatalf("run: %v", err)
		}
		instr = m.ICount
	}
	b.ReportMetric(float64(instr), "guest_instructions")
}

// BenchmarkRunObsOff / BenchmarkRunObsOn measure the observability
// layer's cost on a full tQUAD run of the wfs study workload.  ObsOff is
// the disabled path (nil observer: nil-receiver fast path everywhere) and
// must show no measurable regression against the seed; ObsOn carries a
// live registry and tracer and reports the exported metric count.
func BenchmarkRunObsOff(b *testing.B) {
	benchObsRun(b, nil)
}

func BenchmarkRunObsOn(b *testing.B) {
	benchObsRun(b, obs.NewObserver())
}

func benchObsRun(b *testing.B, o *obs.Observer) {
	s, err := study.NewObserved(wfs.Study(), o)
	if err != nil {
		b.Fatalf("study: %v", err)
	}
	iv, err := s.SliceForCount(64)
	if err != nil {
		b.Fatalf("slice: %v", err)
	}
	// Workload build and native calibration (SliceForCount runs the
	// uninstrumented workload once) are setup, not the instrumented run
	// under measurement — exclude them so 1x logs compare run cost.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, _, err := s.TQUAD(core.Options{SliceInterval: iv, IncludeStack: true})
		if err != nil {
			b.Fatalf("tQUAD: %v", err)
		}
		if i == 0 {
			b.ReportMetric(float64(prof.TotalInstr), "guest_instructions")
			b.ReportMetric(float64(len(o.Registry().Snapshot())), "metrics_exported")
		}
	}
}

// BenchmarkRunServeOff / BenchmarkRunServeOn measure the live telemetry
// layer's cost on a scheduler-driven live (non-replay) tQUAD run.
// ServeOn carries the whole -serve stack — run tracker, event bus,
// stall detector, HTTP server with one subscribed event-stream consumer
// — while ServeOff is the shipped default (nil sink, watchdog never
// installed).  The heartbeat stride bounds event volume to a handful
// per run, so the pair must stay within a few percent of each other.
func BenchmarkRunServeOff(b *testing.B) { benchServeRun(b, false) }

func BenchmarkRunServeOn(b *testing.B) { benchServeRun(b, true) }

func benchServeRun(b *testing.B, serveOn bool) {
	s := benchStudy(b)
	// Both arms run under a cancellable context, exactly like the CLIs
	// (whose runs always carry SIGINT supervision): the comparison then
	// isolates the telemetry layer, not the supervised-loop entry that
	// signal handling already pays for.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := study.RunConfig{Kind: study.RunTQUAD, SliceInterval: 200_000, IncludeStack: true}
	for i := 0; i < b.N; i++ {
		// A fresh scheduler per iteration: memoisation would otherwise
		// serve every run after the first from cache.
		sch := study.NewScheduler(s, 1)
		sch.SetContext(ctx)
		sch.SetReplay(false) // execute live: the watchdog heartbeat path
		if serveOn {
			o := obs.NewObserver()
			tracker := live.NewTracker(live.TrackerOptions{
				Registry:    o.Registry(),
				StallWindow: time.Second,
			})
			srv, err := live.Serve("127.0.0.1:0", live.Options{Registry: o.Registry(), Tracker: tracker})
			if err != nil {
				b.Fatalf("serve: %v", err)
			}
			sub := tracker.Bus().Subscribe()
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for range sub.Events() {
				}
			}()
			sch.SetEvents(tracker)
			res, err := sch.Run(cfg)
			if err != nil {
				b.Fatalf("run: %v", err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.ICount), "guest_instructions")
			}
			sch.Close()
			sub.Close()
			<-drained
			tracker.Close()
			srv.Close()
			continue
		}
		res, err := sch.Run(cfg)
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.ICount), "guest_instructions")
		}
		sch.Close()
	}
}

// BenchmarkImgprocPipeline measures the second case-study workload (the
// integer image pipeline) natively and under tQUAD.
func BenchmarkImgprocPipeline(b *testing.B) {
	w, err := imgproc.NewWorkload(imgproc.Small())
	if err != nil {
		b.Fatalf("workload: %v", err)
	}
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, _ := w.NewMachine()
			if err := m.Run(500_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tquad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, _ := w.NewMachine()
			e := pin.NewEngine(m)
			core.Attach(e, core.Options{SliceInterval: 3000, IncludeStack: true})
			if err := m.Run(500_000_000); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(m.Time())/float64(m.ICount), "slowdown_x")
			}
		}
	})
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblation_ShadowPagedVsMap compares the paged shadow memory
// against the naive map-per-address representation on a realistic access
// pattern.
func BenchmarkAblation_ShadowPagedVsMap(b *testing.B) {
	const span = 1 << 20
	b.Run("paged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := shadow.NewOwners()
			for a := uint64(0); a < span; a += 8 {
				o.SetRange(a, 8, uint16(a%7+1))
			}
			var sum uint64
			for a := uint64(0); a < span; a += 8 {
				sum += uint64(o.Owner(a))
			}
			_ = sum
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := shadow.NewMapOwners()
			for a := uint64(0); a < span; a += 8 {
				o.SetRange(a, 8, uint16(a%7+1))
			}
			var sum uint64
			for a := uint64(0); a < span; a += 8 {
				sum += uint64(o.Owner(a))
			}
			_ = sum
		}
	})
}

// BenchmarkAblation_CodeCache compares the Pin-style code cache
// (decode+instrument once) against decoding on every step.
func BenchmarkAblation_CodeCache(b *testing.B) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		b.Fatalf("workload: %v", err)
	}
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "decode-per-step"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, _ := w.NewMachine()
				m.CacheEnabled = cached
				if err := m.Run(wfs.MaxInstr); err != nil {
					b.Fatalf("run: %v", err)
				}
			}
		})
	}
}

// BenchmarkAblation_PrefetchFastPath compares the paper's
// return-immediately-on-prefetch analysis path against tracing
// prefetches like ordinary reads.
func BenchmarkAblation_PrefetchFastPath(b *testing.B) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		b.Fatalf("workload: %v", err)
	}
	for _, trace := range []bool{false, true} {
		name := "fast-path"
		if trace {
			name = "trace-prefetches"
		}
		b.Run(name, func(b *testing.B) {
			var overhead uint64
			for i := 0; i < b.N; i++ {
				m, _ := w.NewMachine()
				e := pin.NewEngine(m)
				core.Attach(e, core.Options{IncludeStack: true, TracePrefetches: trace})
				if err := m.Run(wfs.MaxInstr); err != nil {
					b.Fatalf("run: %v", err)
				}
				overhead = m.Overhead
			}
			b.ReportMetric(float64(overhead), "simulated_overhead")
		})
	}
}

// BenchmarkAblation_Granularity compares instruction-granular analysis
// calls against basic-block (TRACE) granularity for the same measurement
// (executed instruction counting): the block form fires an order of
// magnitude fewer analysis calls.
func BenchmarkAblation_Granularity(b *testing.B) {
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		b.Fatalf("workload: %v", err)
	}
	b.Run("per-instruction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, _ := w.NewMachine()
			e := pin.NewEngine(m)
			var count uint64
			e.INSAddInstrumentFunction(func(ins *pin.INS) {
				ins.InsertCall(func(ctx *pin.Context) { count++ })
			})
			if err := m.Run(wfs.MaxInstr); err != nil {
				b.Fatal(err)
			}
			if count != m.ICount {
				b.Fatalf("count %d != icount %d", count, m.ICount)
			}
		}
	})
	b.Run("per-basic-block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, _ := w.NewMachine()
			e := pin.NewEngine(m)
			var count uint64
			e.TRACEAddInstrumentFunction(func(tr *pin.TRACE) {
				n := uint64(tr.NumInstrs())
				tr.InsertCall(func(ctx *pin.Context) { count += n })
			})
			if err := m.Run(wfs.MaxInstr); err != nil {
				b.Fatal(err)
			}
			if count != m.ICount {
				b.Fatalf("count %d != icount %d", count, m.ICount)
			}
		}
	})
}

// BenchmarkSweepReplay is the record-once/replay-many headline: a
// five-configuration sweep through the scheduler costs exactly one guest
// execution — every analysis replays the recorded event trace.  The
// guest_execs metric is asserted, not just reported.
func BenchmarkSweepReplay(b *testing.B) {
	s := benchStudy(b)
	native, err := s.NativeICount()
	if err != nil {
		b.Fatalf("native: %v", err)
	}
	configs := []study.RunConfig{
		{Kind: study.RunFlat},
		{Kind: study.RunQUAD, IncludeStack: true},
		{Kind: study.RunTQUAD, SliceInterval: native / 64, IncludeStack: true},
		{Kind: study.RunTQUAD, SliceInterval: native / 16, IncludeStack: true},
		{Kind: study.RunTQUAD, SliceInterval: native / 16, IncludeStack: false},
	}
	var execs uint64
	for i := 0; i < b.N; i++ {
		sch := study.NewScheduler(s, 4)
		for _, cfg := range configs {
			sch.Submit(cfg)
		}
		if errs := sch.Flush(); len(errs) > 0 {
			b.Fatalf("sweep: %v", errs)
		}
		execs = sch.GuestExecutions()
		if execs != 1 {
			b.Fatalf("sweep of %d configs used %d guest executions, want 1", len(configs), execs)
		}
		sch.Close()
	}
	b.ReportMetric(float64(len(configs)), "configs")
	b.ReportMetric(float64(execs), "guest_execs")
}

// BenchmarkSweepCache measures the memory-hierarchy study: four cache
// geometries simulated off a single recorded guest execution.  Reports
// the off-chip traffic of the smallest and largest hierarchy (the spread
// the sweep exists to expose) and asserts the one-execution guarantee.
func BenchmarkSweepCache(b *testing.B) {
	s := benchStudy(b)
	native, err := s.NativeICount()
	if err != nil {
		b.Fatalf("native: %v", err)
	}
	caches := []string{
		"l1=8k/2/64",
		"l1=32k/8/64,l2=256k/8/64",
		"l1=32k/8/64,l2=256k/8/64,llc=2m/16/64",
		"l1=64k/8/64,l2=512k/8/64,llc=8m/16/64",
	}
	var first, last *study.RunResult
	for i := 0; i < b.N; i++ {
		sch := study.NewScheduler(s, 4)
		pend := make([]*study.Pending, len(caches))
		for j, c := range caches {
			pend[j] = sch.Submit(study.RunConfig{
				Kind: study.RunTQUAD, SliceInterval: native / 64,
				IncludeStack: true, Cache: c,
			})
		}
		if errs := sch.Flush(); len(errs) > 0 {
			b.Fatalf("sweep: %v", errs)
		}
		for j, p := range pend {
			res, err := p.Wait()
			if err != nil {
				b.Fatalf("cache %s: %v", caches[j], err)
			}
			if j == 0 {
				first = res
			}
			if j == len(caches)-1 {
				last = res
			}
		}
		if execs := sch.GuestExecutions(); execs != 1 {
			b.Fatalf("sweep of %d hierarchies used %d guest executions, want 1", len(caches), execs)
		}
		sch.Close()
	}
	b.ReportMetric(float64(len(caches)), "hierarchies")
	b.ReportMetric(float64(first.Mem.OffChipBytes()), "offchip_small_bytes")
	b.ReportMetric(float64(last.Mem.OffChipBytes()), "offchip_large_bytes")
}

// BenchmarkParallelReplay measures indexed parallel trace decode against
// the sequential replayer over the same in-memory recording of the full
// study workload, with a bare consumer attached (no analysis tools), so
// the comparison isolates the decode pipeline.  The speedup target from
// the indexed-replay work is >=2x at four workers on >=4 cores: decode
// is ~75% of a bare replay (pprof), so four decode workers bound the
// pipeline at the serial apply stage.  Each sub-benchmark reports the
// host's core count — on a single-core runner the workers time-slice
// one CPU and the residual speedup (~1.3x) is the batch-decode
// efficiency win alone, not concurrency.
func BenchmarkParallelReplay(b *testing.B) {
	s := benchStudy(b)
	m, _ := s.W.NewMachine()
	e := pin.NewEngine(m)
	var buf bytes.Buffer
	rec, err := etrace.Record(e, &buf, etrace.RecordOptions{Workload: "study", Blocks: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Run(wfs.MaxInstr); err != nil {
		b.Fatal(err)
	}
	if err := rec.Finish(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
		for i := 0; i < b.N; i++ {
			rp, err := etrace.NewReplayer(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if err := rp.Replay(); err != nil {
				b.Fatal(err)
			}
			if rp.ICount() != m.ICount {
				b.Fatalf("replayed %d instructions, recorded %d", rp.ICount(), m.ICount)
			}
		}
	})
	for _, jobs := range []int{2, 4} {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
			for i := 0; i < b.N; i++ {
				pr, err := etrace.NewParallelReplayer(bytes.NewReader(data), int64(len(data)),
					etrace.ParallelOptions{Jobs: jobs})
				if err != nil {
					b.Fatal(err)
				}
				host := pr.NewConsumer()
				if err := pr.Replay(); err != nil {
					b.Fatal(err)
				}
				if host.ICount() != m.ICount {
					b.Fatalf("replayed %d instructions, recorded %d", host.ICount(), m.ICount)
				}
			}
		})
	}
}
