// Disk-corruption chaos suite: the scheduler records a guest trace
// through a fault injector that silently damages the bytes on their way
// to disk (bit flips, torn tails) or fails them honestly (ENOSPC), and
// every scenario asserts the integrity contract end to end — corruption
// is detected at replay, re-recorded exactly once, and the sweep's
// results stay byte-identical to a fault-free baseline; unrecoverable
// faults fail fast with the real cause in the error chain.  Run in
// isolation via `make corrupt` (folded into `make verify`).
package repro_test

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"tquad/internal/chaos"
	"tquad/internal/etrace"
	"tquad/internal/obs"
	"tquad/internal/study"
)

// TestChaosCorruptTraceRerecord: seeded bit flips damage the first
// recording silently — the recorder sees every write succeed.  Replay
// must detect the damage, re-execute the guest exactly once (the second
// recording is clean: RecordCorruptions budget of 1), and deliver every
// config byte-identical to the fault-free baseline.
func TestChaosCorruptTraceRerecord(t *testing.T) {
	baseline := baselineResults(t)
	sch, o := observedChaosScheduler(t)
	sch.SetHooks(chaos.New(chaos.Plan{
		RecordFlipOffsets: chaos.BitFlips(31337, 3, 4096),
		RecordCorruptions: 1,
	}).Hooks())
	for _, cfg := range chaosConfigs() {
		res, err := sch.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Key(), err)
		}
		if got := renderResult(res); got != baseline[cfg.Key()] {
			t.Errorf("%s differs from fault-free baseline after rerecord:\n%s\nvs\n%s",
				cfg.Key(), got, baseline[cfg.Key()])
		}
	}
	if n := sch.GuestExecutions(); n != 2 {
		t.Errorf("guest executed %d times, want 2 (original + one re-recording)", n)
	}
	if got := o.Registry().Counter(obs.MetricSchedRerecords).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedRerecords, got)
	}
}

// TestChaosCorruptTraceRerecordBudget: when every recording attempt is
// corrupted, the one-re-execution budget caps the damage — the sweep
// fails with the corruption identified, rather than re-running the
// guest forever.
func TestChaosCorruptTraceRerecordBudget(t *testing.T) {
	sch := study.NewScheduler(chaosStudy(t), 2)
	defer sch.Close()
	sch.SetHooks(chaos.New(chaos.Plan{
		RecordFlipOffsets: chaos.BitFlips(31337, 3, 4096),
		// RecordCorruptions 0: every attempt, including the re-recording.
	}).Hooks())
	for _, cfg := range chaosConfigs() {
		_, err := sch.Run(cfg)
		if err == nil {
			t.Fatalf("%s succeeded on a trace corrupted every attempt", cfg.Key())
		}
		if !etrace.IsCorrupt(err) {
			t.Errorf("%s: err = %v, want a corruption-classified chain", cfg.Key(), err)
		}
	}
	if n := sch.GuestExecutions(); n != 2 {
		t.Errorf("guest executed %d times, want 2 (the budget is one re-recording)", n)
	}
}

// TestChaosENOSPCPermanent: a disk that fills mid-recording is a
// permanent host condition — the sweep fails fast with ENOSPC in every
// error chain, burning zero retries and zero extra guest executions.
func TestChaosENOSPCPermanent(t *testing.T) {
	sch, o := observedChaosScheduler(t)
	sch.SetHooks(chaos.New(chaos.Plan{RecordENOSPCAfter: 4096}).Hooks())
	sch.SetRetries(3)
	sch.SetBackoff(time.Millisecond, 4*time.Millisecond)
	for _, cfg := range chaosConfigs() {
		_, err := sch.Run(cfg)
		if err == nil {
			t.Fatalf("%s succeeded on a full disk", cfg.Key())
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Errorf("%s: err = %v, want ENOSPC in the chain", cfg.Key(), err)
		}
	}
	if n := sch.GuestExecutions(); n != 1 {
		t.Errorf("guest executed %d times, want 1 (ENOSPC must not retry)", n)
	}
	if got := o.Registry().Counter(obs.MetricSchedRetries).Value(); got != 0 {
		t.Errorf("%s = %d, want 0 (permanent faults burn no retries)", obs.MetricSchedRetries, got)
	}
}

// TestChaosTornTailRecording: the crash-consistency shape — writes past
// an offset report success but never land, so the recording "succeeds"
// with a truncated file.  Replay must detect the tear and the rerecord
// path (clean on the second attempt) must restore baseline results.
func TestChaosTornTailRecording(t *testing.T) {
	baseline := baselineResults(t)
	sch := study.NewScheduler(chaosStudy(t), 2)
	defer sch.Close()
	sch.SetHooks(chaos.New(chaos.Plan{
		RecordTornTail:    8192,
		RecordCorruptions: 1,
	}).Hooks())
	for _, cfg := range chaosConfigs() {
		res, err := sch.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Key(), err)
		}
		if got := renderResult(res); got != baseline[cfg.Key()] {
			t.Errorf("%s differs from fault-free baseline after torn-tail rerecord:\n%s\nvs\n%s",
				cfg.Key(), got, baseline[cfg.Key()])
		}
	}
	if n := sch.GuestExecutions(); n != 2 {
		t.Errorf("guest executed %d times, want 2 (original + one re-recording)", n)
	}
}
