// Matmul: use tQUAD to compare the temporal memory behaviour of two
// loop orders of a dense matrix multiplication — the classic
// code-revision use case the paper motivates ("general application
// revision for performance improvement").
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"tquad/internal/core"
	"tquad/internal/glibc"
	"tquad/internal/gos"
	"tquad/internal/hl"
	"tquad/internal/image"
	"tquad/internal/pin"
	"tquad/internal/vm"
)

const dim = 48 // matrix dimension

// buildMatmul describes C = A*B with the requested inner loop order.
func buildMatmul(order string) *hl.Builder {
	b := hl.NewBuilder("matmul_"+order, image.Main)
	a := b.Global("A", dim*dim*8)
	bb := b.Global("B", dim*dim*8)
	c := b.Global("C", dim*dim*8)

	// init: deterministic matrix contents.
	b.Func("init", 0, func(f *hl.Fn) {
		pa := f.Local()
		pb := f.Local()
		f.Set(pa, f.GAddr(a))
		f.Set(pb, f.GAddr(bb))
		i := f.Local()
		f.ForRangeI(i, 0, dim*dim, func() {
			f.St8(f.Add(pa, f.ShlI(i, 3)), 0, f.I2f(f.Rem(i, f.Const(17))))
			f.St8(f.Add(pb, f.ShlI(i, 3)), 0, f.I2f(f.Rem(i, f.Const(13))))
		})
		f.Ret0()
	})

	// multiply: the kernel under study.
	b.Func("multiply", 0, func(f *hl.Fn) {
		pa := f.Local()
		pb := f.Local()
		pc := f.Local()
		f.Set(pa, f.GAddr(a))
		f.Set(pb, f.GAddr(bb))
		f.Set(pc, f.GAddr(c))
		i := f.Local()
		j := f.Local()
		k := f.Local()
		elem := func(base hl.Reg, r, cidx hl.Reg) hl.Reg {
			return f.Add(base, f.ShlI(f.Add(f.MulI(r, dim), cidx), 3))
		}
		switch order {
		case "ijk":
			// Strided B access in the inner loop: poor locality.
			f.ForRangeI(i, 0, dim, func() {
				f.ForRangeI(j, 0, dim, func() {
					acc := f.Local()
					f.SetF(acc, 0)
					f.ForRangeI(k, 0, dim, func() {
						f.Set(acc, f.Fadd(acc,
							f.Fmul(f.Ld8(elem(pa, i, k), 0), f.Ld8(elem(pb, k, j), 0))))
					})
					f.St8(elem(pc, i, j), 0, acc)
				})
			})
		case "ikj":
			// Streaming access: C row accumulates B rows.
			f.ForRangeI(i, 0, dim, func() {
				f.ForRangeI(k, 0, dim, func() {
					av := f.Local()
					f.Set(av, f.Ld8(elem(pa, i, k), 0))
					f.ForRangeI(j, 0, dim, func() {
						f.St8(elem(pc, i, j), 0,
							f.Fadd(f.Ld8(elem(pc, i, j), 0), f.Fmul(av, f.Ld8(elem(pb, k, j), 0))))
					})
				})
			})
		default:
			panic("unknown order " + order)
		}
		f.Ret0()
	})

	// checksum: fold C into an integer so the result is observable.
	b.Func("checksum", 0, func(f *hl.Fn) {
		pc := f.Local()
		f.Set(pc, f.GAddr(c))
		acc := f.Local()
		f.SetF(acc, 0)
		i := f.Local()
		f.ForRangeI(i, 0, dim*dim, func() {
			f.Set(acc, f.Fadd(acc, f.Ld8(f.Add(pc, f.ShlI(i, 3)), 0)))
		})
		f.Ret(f.F2i(acc))
	})

	b.Func("main", 0, func(f *hl.Fn) {
		f.CallV("init")
		f.CallV("multiply")
		f.Ret(f.Call("checksum"))
	})
	return b
}

func profile(order string) (checksum int64, prof *core.Profile) {
	prog, err := hl.Link(buildMatmul(order), glibc.Builder())
	if err != nil {
		log.Fatal(err)
	}
	m := vm.New()
	m.SetSyscallHandler(gos.New())
	for _, img := range prog.Images() {
		m.LoadImage(img)
	}
	m.Reset(prog.EntryPC)
	engine := pin.NewEngine(m)
	tool := core.Attach(engine, core.Options{SliceInterval: 20_000, IncludeStack: true})
	if err := m.Run(1_000_000_000); err != nil {
		log.Fatal(err)
	}
	return m.ExitCode, tool.Snapshot()
}

func main() {
	log.SetFlags(0)
	var sums [2]int64
	for idx, order := range []string{"ijk", "ikj"} {
		sum, prof := profile(order)
		sums[idx] = sum
		k, _ := prof.Kernel("multiply")
		st := k.Stats(true, prof.SliceInterval)
		fmt.Printf("%s: checksum=%d  instructions=%-9d  multiply: %.3f B/instr read, %.3f B/instr written (peak %.3f)\n",
			order, sum, prof.TotalInstr, st.AvgRead, st.AvgWrite, st.MaxRW)
	}
	if sums[0] != sums[1] {
		log.Fatalf("loop orders disagree: %d vs %d", sums[0], sums[1])
	}
	fmt.Println("\nsame result, different temporal bandwidth signature — the ikj variant")
	fmt.Println("writes C once per inner iteration (higher write intensity), which is")
	fmt.Println("precisely what a bandwidth-aware mapping decision needs to know.")
}
