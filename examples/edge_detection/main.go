// Edge detection: profile the second case-study workload (the integer
// image pipeline) and render its temporal bandwidth signature and QDU
// data flow — tQUAD applied outside the audio domain.
//
//	go run ./examples/edge_detection
package main

import (
	"fmt"
	"log"

	"tquad/internal/core"
	"tquad/internal/imgproc"
	"tquad/internal/phase"
	"tquad/internal/pin"
	"tquad/internal/quad"
	"tquad/internal/report"
)

func main() {
	log.SetFlags(0)
	w, err := imgproc.NewWorkload(imgproc.Small())
	if err != nil {
		log.Fatal(err)
	}
	m, osys := w.NewMachine()
	engine := pin.NewEngine(m)
	tq := core.Attach(engine, core.Options{SliceInterval: 3000, IncludeStack: true})
	qd := quad.Attach(engine, quad.Options{IncludeStack: false})
	if err := m.Run(500_000_000); err != nil {
		log.Fatal(err)
	}

	edges, _ := osys.File(w.Cfg.OutputFile)
	on := 0
	for _, v := range edges {
		if v == 255 {
			on++
		}
	}
	fmt.Printf("pipeline done: %dx%d image, %d edge pixels, %d guest instructions\n\n",
		w.Cfg.Width, w.Cfg.Height, on, m.ICount)

	prof := tq.Snapshot()
	series := map[string][]uint64{}
	for _, name := range imgproc.KernelNames() {
		if k, ok := prof.Kernel(name); ok {
			series[name] = k.Series(prof.NumSlices, true, true)
		}
	}
	fmt.Print(report.BandwidthChart("temporal read bandwidth (bytes/slice)",
		imgproc.KernelNames(), series, 60))

	phases := phase.Detect(prof, phase.Options{IncludeStack: true, Kernels: imgproc.KernelNames()})
	fmt.Printf("\n%d phases:\n", len(phases))
	for i, ph := range phases {
		fmt.Printf("  phase %d [%4d,%4d): %v\n", i+1, ph.Start, ph.End, ph.KernelNames())
	}

	fmt.Println("\ndata flow (QDU bindings over 10 KB):")
	for _, b := range qd.Report().Bindings {
		if b.Producer == "" || b.Bytes < 10_000 {
			continue
		}
		fmt.Printf("  %-10s -> %-10s %8d bytes\n", b.Producer, b.Consumer, b.Bytes)
	}
}
