// WFS study: drive the library's case-study API end to end on the fast
// configuration — the programme of the paper's Section V in ~20 lines of
// client code.  (cmd/wfsstudy renders the full evaluation; this example
// shows the API surface an adopter would use.)
//
//	go run ./examples/wfs_study
package main

import (
	"fmt"
	"log"

	"tquad/internal/core"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	s, err := study.New(wfs.Small())
	if err != nil {
		log.Fatal(err)
	}

	// Flat profile (Table I): who dominates execution time?
	flat, err := s.FlatProfile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top kernels by execution time:")
	for i, r := range flat.Rows {
		if i == 5 {
			break
		}
		fmt.Printf("  %d. %-24s %5.2f%%  (%d calls)\n", i+1, r.Name, r.Pct, r.Calls)
	}

	// Temporal bandwidth (Figures 6/7): when do they run, and how hard
	// do they hit memory?
	iv, err := s.SliceForCount(64)
	if err != nil {
		log.Fatal(err)
	}
	prof, _, err := s.TQUAD(core.Options{SliceInterval: iv, IncludeStack: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntemporal read-bandwidth (stack included):")
	fmt.Print(study.RenderFigure("", prof, wfs.TopTenKernels()[:5], true, true, 60))

	// Phases (Table IV): the structure a partitioner needs.
	phases, pprof, err := s.Phases(5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d execution phases:\n", len(phases))
	labels := []string{"initialization", "wave load", "wave propagation", "WFS main processing", "wave save"}
	for i, ph := range phases {
		label := "?"
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Printf("  %-20s slices %5d-%5d (%4.1f%% of run, %d kernels)\n",
			label, ph.Start, ph.End-1,
			100*float64(ph.Span())/float64(pprof.NumSlices), len(ph.Kernels))
	}
}
