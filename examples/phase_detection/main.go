// Phase detection: build a synthetic three-stage pipeline (produce →
// transform → consume), profile it with tQUAD, detect its execution
// phases, and cluster its kernels by communication — the full task
// partitioning workflow of the Delft WorkBench context the paper targets.
//
//	go run ./examples/phase_detection
package main

import (
	"fmt"
	"log"

	"tquad/internal/cluster"
	"tquad/internal/core"
	"tquad/internal/glibc"
	"tquad/internal/gos"
	"tquad/internal/hl"
	"tquad/internal/image"
	"tquad/internal/phase"
	"tquad/internal/pin"
	"tquad/internal/quad"
	"tquad/internal/vm"
)

const words = 16384

func buildPipeline() *hl.Builder {
	b := hl.NewBuilder("pipeline", image.Main)
	raw := b.Global("raw", words*8)
	cooked := b.Global("cooked", words*8)
	result := b.Global("result", 8)

	// produce: generate pseudo-random raw data (phase 1).
	b.Func("produce", 0, func(f *hl.Fn) {
		p := f.Local()
		f.Set(p, f.GAddr(raw))
		state := f.Local()
		f.SetI(state, 0x1234567)
		i := f.Local()
		f.ForRangeI(i, 0, words, func() {
			f.Set(state, f.Add(f.Mul(state, f.Const(6364136223846793005)), f.Const(1442695040888963407)))
			f.St8(f.Add(p, f.ShlI(i, 3)), 0, f.ShrI(state, 33))
		})
		f.Ret0()
	})
	// smooth: one neighbourhood pass raw -> cooked (phase 2, called
	// repeatedly).
	b.Func("smooth", 1, func(f *hl.Fn) {
		pass := f.Param(0)
		_ = pass
		src := f.Local()
		dst := f.Local()
		f.Set(src, f.GAddr(raw))
		f.Set(dst, f.GAddr(cooked))
		i := f.Local()
		f.ForRangeI(i, 1, words-1, func() {
			s := f.Add(src, f.ShlI(i, 3))
			v := f.Add(f.Add(f.Ld8(s, -8), f.Ld8(s, 0)), f.Ld8(s, 8))
			f.St8(f.Add(dst, f.ShlI(i, 3)), 0, f.Div(v, f.Const(3)))
		})
		// Feed back for the next pass.
		f.ForRangeI(i, 0, words, func() {
			f.St8(f.Add(src, f.ShlI(i, 3)), 0, f.Ld8(f.Add(dst, f.ShlI(i, 3)), 0))
		})
		f.Ret0()
	})
	// consume: reduce cooked data into the result (phase 3).
	b.Func("consume", 0, func(f *hl.Fn) {
		p := f.Local()
		f.Set(p, f.GAddr(cooked))
		acc := f.Local()
		f.SetI(acc, 0)
		i := f.Local()
		f.ForRangeI(i, 0, words, func() {
			f.Set(acc, f.Xor(acc, f.Ld8(f.Add(p, f.ShlI(i, 3)), 0)))
		})
		f.St8(f.GAddr(result), 0, acc)
		f.Ret(acc)
	})
	b.Func("main", 0, func(f *hl.Fn) {
		f.CallV("produce")
		pass := f.Local()
		f.ForRangeI(pass, 0, 6, func() {
			f.CallV("smooth", pass)
		})
		f.Ret(f.Call("consume"))
	})
	return b
}

func main() {
	log.SetFlags(0)
	prog, err := hl.Link(buildPipeline(), glibc.Builder())
	if err != nil {
		log.Fatal(err)
	}
	m := vm.New()
	m.SetSyscallHandler(gos.New())
	for _, img := range prog.Images() {
		m.LoadImage(img)
	}
	m.Reset(prog.EntryPC)
	engine := pin.NewEngine(m)
	tq := core.Attach(engine, core.Options{SliceInterval: 5_000, IncludeStack: true})
	qd := quad.Attach(engine, quad.Options{IncludeStack: true})
	if err := m.Run(1_000_000_000); err != nil {
		log.Fatal(err)
	}

	prof := tq.Snapshot()
	phases := phase.Detect(prof, phase.Options{
		IncludeStack: true,
		Kernels:      []string{"produce", "smooth", "consume"},
		// The pipeline stages hand off sharply, so use a tight window
		// and disable the containment merge meant for loop alternation.
		Window:     1,
		MergeSim:   0.6,
		OverlapSim: 2,
	})
	fmt.Printf("detected %d phases over %d slices:\n", len(phases), prof.NumSlices)
	for i, ph := range phases {
		fmt.Printf("  phase %d [%4d,%4d): %v\n", i+1, ph.Start, ph.End, ph.KernelNames())
	}

	rep := qd.Report()
	fmt.Println("\nproducer/consumer bindings:")
	for _, bind := range rep.Bindings {
		if bind.Producer == "" || bind.Bytes < 1000 {
			continue
		}
		fmt.Printf("  %-8s -> %-8s %8d bytes\n", bind.Producer, bind.Consumer, bind.Bytes)
	}

	res := cluster.Build(prof, rep, cluster.Options{TargetClusters: 2, IncludeStack: true})
	fmt.Println("\nclustering for task partitioning (2 clusters):")
	for i, c := range res.Clusters {
		fmt.Printf("  cluster %d: %v (intra %d bytes)\n", i+1, c.Kernels, c.IntraBytes)
	}
	fmt.Printf("  inter-cluster traffic: %d bytes\n", res.InterBytes)
}
