// Quickstart: build a tiny guest program with the hl builder, run it
// under the tQUAD temporal profiler, and print its memory-bandwidth
// profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tquad/internal/core"
	"tquad/internal/glibc"
	"tquad/internal/gos"
	"tquad/internal/hl"
	"tquad/internal/image"
	"tquad/internal/pin"
	"tquad/internal/vm"
)

func main() {
	log.SetFlags(0)

	// 1. Describe a guest program: two kernels with very different
	// memory behaviour.
	b := hl.NewBuilder("quickstart", image.Main)
	buf := b.Global("buf", 8*4096)

	// fill: streams 4096 words into a global buffer.
	b.Func("fill", 0, func(f *hl.Fn) {
		p := f.Local()
		f.Set(p, f.GAddr(buf))
		i := f.Local()
		f.ForRangeI(i, 0, 4096, func() {
			f.St8(f.Add(p, f.ShlI(i, 3)), 0, i)
		})
		f.Ret0()
	})
	// crunch: computes over the buffer with far fewer bytes per
	// instruction (a compute-bound kernel).
	b.Func("crunch", 0, func(f *hl.Fn) {
		p := f.Local()
		f.Set(p, f.GAddr(buf))
		acc := f.Local()
		f.SetF(acc, 0)
		i := f.Local()
		f.ForRangeI(i, 0, 4096, func() {
			v := f.Local()
			f.Set(v, f.I2f(f.Ld8(f.Add(p, f.ShlI(i, 3)), 0)))
			// Plenty of arithmetic per loaded word.
			f.Set(v, f.Fsqrt(f.Fabs(f.Fsin(v))))
			f.Set(acc, f.Fadd(acc, v))
		})
		f.Ret(f.F2i(acc))
	})
	b.Func("main", 0, func(f *hl.Fn) {
		f.CallV("fill")
		f.Ret(f.Call("crunch"))
	})

	// 2. Link against the guest libc and load into a fresh machine.
	prog, err := hl.Link(b, glibc.Builder())
	if err != nil {
		log.Fatal(err)
	}
	m := vm.New()
	m.SetSyscallHandler(gos.New())
	for _, img := range prog.Images() {
		m.LoadImage(img)
	}
	m.Reset(prog.EntryPC)

	// 3. Attach tQUAD through the pin-style instrumentation engine.
	engine := pin.NewEngine(m)
	tool := core.Attach(engine, core.Options{SliceInterval: 2000, IncludeStack: true})

	// 4. Run and inspect.
	if err := m.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	prof := tool.Snapshot()
	fmt.Printf("executed %d instructions in %d slices (exit code %d)\n\n",
		prof.TotalInstr, prof.NumSlices, m.ExitCode)
	for _, k := range prof.Kernels {
		if k.Name != "fill" && k.Name != "crunch" {
			continue
		}
		st := k.Stats(true, prof.SliceInterval)
		fmt.Printf("%-8s active slices %3d..%3d  avg %.2f B/instr read, %.2f B/instr written, peak %.2f\n",
			k.Name, k.FirstSlice, k.LastSlice, st.AvgRead, st.AvgWrite, st.MaxRW)
	}
	fmt.Println("\nfill is the bandwidth hog; crunch barely touches memory —")
	fmt.Println("exactly the distinction tQUAD exists to expose.")
}
