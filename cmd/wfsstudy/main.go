// Command wfsstudy reproduces the paper's entire evaluation section in
// one run: Tables I-IV, Figures 6-7 (as text charts), the slowdown study
// and the kernel-clustering outlook.  Its output is the source of
// EXPERIMENTS.md.
//
// Usage:
//
//	wfsstudy [-config small|study] [-cache SPEC[;SPEC...]] [-jobs N]
//	         [-timeout D] [-run-timeout D]
//	         [-max-icount N] [-retries N] [-resume DIR]
//	         [-metrics FILE] [-trace FILE] [-journal FILE]
//	         [-serve ADDR] [-stall-window D]
//
// -cache adds the memory-hierarchy study: each semicolon-separated
// hierarchy (e.g. l1=32k/8/64,l2=256k/8/64,llc=8m/16/64) is simulated
// over the Figure 6 run — all of them replayed off the sweep's single
// recorded guest execution — and compared in an off-chip bandwidth
// table, with an off-chip variant of the Figure 6 chart and a per-phase
// off-chip column companion to Table IV for the first hierarchy.
//
// Every experiment in the sweep is submitted to the parallel scheduler
// up front and executes concurrently, bounded by -jobs (default
// GOMAXPROCS); configurations shared between tables and figures execute
// the guest once.  Rendering happens only after the whole sweep has
// drained — if any experiment fails, each failure is reported and the
// command exits non-zero without printing partial tables.  Output is
// byte-identical for every -jobs value.
//
// The sweep is supervised: SIGINT/SIGTERM (and the -timeout deadline)
// cancel it cleanly — in-flight guests stop at their next basic block,
// temp traces are removed, and the checkpoint journal (if -resume is
// set) is flushed so a rerun continues where this one stopped.
// -run-timeout bounds one experiment's wall-clock time, -max-icount its
// guest instruction budget, and -retries re-runs transiently failed
// attempts with deterministic backoff.  -resume DIR journals completed
// experiments and the recorded guest trace into DIR; rerunning with the
// same DIR re-executes zero completed guest work.
//
// -metrics writes a Prometheus text-format snapshot of every run's
// counters, -trace a chrome://tracing JSON timeline of the pipeline
// stages, and -journal a JSONL event journal.  Counters accumulate over
// the whole study (process-lifetime totals across all runs).
//
// -serve starts an embedded telemetry server for the duration of the
// sweep: GET / is a live progress page (per-experiment progress bars,
// rates, ETAs and a bandwidth chart of completed runs), /metrics the
// live Prometheus registry, /events a Server-Sent Events stream of
// experiment lifecycle events (?format=jsonl for plain JSONL), and
// /debug/pprof/ the Go profiler.  -stall-window flags experiments that
// stop heartbeating.  With -serve unset none of this machinery exists
// and output is byte-identical to previous releases.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tquad/internal/cliutil"
	"tquad/internal/cluster"
	"tquad/internal/memsim"
	"tquad/internal/obs"
	"tquad/internal/obs/live"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

// options collects the sweep's supervision and export settings.
type options struct {
	caches     []memsim.Config
	jobs       int
	timeout    time.Duration
	runTimeout time.Duration
	maxICount  uint64
	retries    int
	resume     string
	metricsOut string
	traceOut   string
	journalOut string
	serveAddr  string
	stallWin   time.Duration
	engine     string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("wfsstudy: ")
	var opt options
	config := flag.String("config", "study", "workload configuration: small or study")
	cache := flag.String("cache", "", "simulate cache hierarchies over the Figure 6 run, e.g. l1=32k/8/64,l2=256k/8/64; semicolon-separated list sweeps geometries")
	flag.IntVar(&opt.jobs, "jobs", 0, "maximum concurrently executing experiments (0 = GOMAXPROCS)")
	flag.DurationVar(&opt.timeout, "timeout", 0, "whole-sweep deadline (0 = none)")
	flag.DurationVar(&opt.runTimeout, "run-timeout", 0, "per-experiment wall-clock bound (0 = none)")
	flag.Uint64Var(&opt.maxICount, "max-icount", 0, "per-experiment guest instruction budget (0 = default)")
	flag.IntVar(&opt.retries, "retries", 0, "retries per experiment after transient failures")
	flag.StringVar(&opt.resume, "resume", "", "checkpoint journal directory: journal completed experiments and resume from them on rerun")
	flag.StringVar(&opt.metricsOut, "metrics", "", "write a Prometheus text-format metrics snapshot to this file")
	flag.StringVar(&opt.traceOut, "trace", "", "write a chrome://tracing JSON trace of the pipeline stages to this file")
	flag.StringVar(&opt.journalOut, "journal", "", "write a JSONL event journal (spans + metrics) to this file")
	flag.StringVar(&opt.engine, "engine", "block", "execution engine: block (pre-decoded basic blocks) or step (reference interpreter)")
	flag.StringVar(&opt.serveAddr, "serve", "", "serve live telemetry (progress page, /metrics, /events, pprof) on this address, e.g. :8080")
	flag.DurationVar(&opt.stallWin, "stall-window", 10*time.Second, "with -serve: flag an experiment as stalled after this long without a heartbeat (0 = never)")
	flag.Parse()

	if opt.jobs < 0 {
		log.Fatalf("bad -jobs %d: must be >= 0", opt.jobs)
	}
	if opt.retries < 0 {
		log.Fatalf("bad -retries %d: must be >= 0", opt.retries)
	}
	if opt.engine != "block" && opt.engine != "step" {
		log.Fatalf("bad -engine %q: must be block or step", opt.engine)
	}
	if *cache != "" {
		var err error
		opt.caches, err = cliutil.ParseList("-cache", *cache, ";", memsim.ParseConfig, memsim.Config.Key)
		if err != nil {
			log.Fatal(err)
		}
	}
	// Probe every output path before hours of sweep work can be wasted
	// on a typo'd export flag.
	if err := cliutil.EnsureWritableAll(
		"-metrics", opt.metricsOut, "-trace", opt.traceOut, "-journal", opt.journalOut,
	); err != nil {
		log.Fatal(err)
	}
	// SIGINT/SIGTERM cancel the sweep context; the deferred scheduler
	// and checkpoint shutdown inside run then clean temp traces and
	// flush the journal before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *config, opt); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, config string, opt options) error {
	var cfg wfs.Config
	switch config {
	case "small":
		cfg = wfs.Small()
	case "study":
		cfg = wfs.Study()
	default:
		return fmt.Errorf("unknown config %q", config)
	}
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}

	// The observer stays nil (zero-cost) unless an export was requested
	// or the telemetry server needs a live registry to expose.
	var o *obs.Observer
	if opt.metricsOut != "" || opt.traceOut != "" || opt.journalOut != "" || opt.serveAddr != "" {
		o = obs.NewObserver()
	}

	// Under -serve every scheduler lifecycle event flows through the run
	// tracker into the SSE bus, and the progress page charts completed
	// runs' effective bandwidth as the sweep drains.
	var (
		tracker *live.Tracker
		chart   *live.ChartData
	)
	if opt.serveAddr != "" {
		chart = live.NewChartData("effective bandwidth of completed runs", "B/instr")
		tracker = live.NewTracker(live.TrackerOptions{Registry: o.Registry(), StallWindow: opt.stallWin})
		defer tracker.Close()
		srv, err := live.Serve(opt.serveAddr, live.Options{
			Registry: o.Registry(),
			Tracker:  tracker,
			Chart:    chart.SVG,
			Title:    "wfsstudy " + config,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		// Stdout, not the log: scripted users bind :0 and read the
		// actually-assigned address from here.
		fmt.Printf("live telemetry at %s\n", srv.URL())
	}

	s, err := study.NewObserved(cfg, o)
	if err != nil {
		return err
	}
	s.W.Interpret = opt.engine == "step"
	sch := study.NewScheduler(s, opt.jobs)
	defer sch.Close()
	sch.SetContext(ctx)
	sch.SetRetries(opt.retries)
	sch.SetRunTimeout(opt.runTimeout)
	sch.SetMaxInstr(opt.maxICount)
	if tracker != nil {
		sch.SetEvents(tracker)
	}
	if opt.resume != "" {
		ck, err := study.OpenCheckpoint(opt.resume)
		if err != nil {
			return err
		}
		defer ck.Close()
		sch.SetCheckpoint(ck)
		if done := len(ck.Completed()); done > 0 {
			log.Printf("resuming: %d experiment(s) already completed in %s", done, opt.resume)
		}
	}

	// Slice sizing needs the native instruction count, so that run goes
	// first; everything after is submitted up front and runs concurrently.
	native, err := sch.NativeICount()
	if err != nil {
		return err
	}
	iv64, err := sch.SliceForCount(64)
	if err != nil {
		return err
	}
	iv256, err := sch.SliceForCount(256)
	if err != nil {
		return err
	}

	pFlat := sch.Submit(study.RunConfig{Kind: study.RunFlat})
	pQuadEx := sch.Submit(study.RunConfig{Kind: study.RunQUAD, IncludeStack: false})
	pQuadIn := sch.Submit(study.RunConfig{Kind: study.RunQUAD, IncludeStack: true})
	pInstr := sch.Submit(study.RunConfig{Kind: study.RunInstrFlat})
	pFig6 := sch.Submit(study.RunConfig{Kind: study.RunTQUAD, SliceInterval: iv64, IncludeStack: true})
	pFig7 := sch.Submit(study.RunConfig{Kind: study.RunTQUAD, SliceInterval: iv256, IncludeStack: true})
	pPhases := sch.Submit(study.RunConfig{Kind: study.RunTQUAD, SliceInterval: 5000, IncludeStack: true})

	// The memory-hierarchy study: every requested geometry simulated over
	// the Figure 6 run, plus the first geometry at the phase interval for
	// the Table IV off-chip column.  In replay mode these all feed off the
	// sweep's one recorded guest execution.
	pCaches := make([]*study.Pending, len(opt.caches))
	for i, mc := range opt.caches {
		pCaches[i] = sch.Submit(study.RunConfig{
			Kind: study.RunTQUAD, SliceInterval: iv64, IncludeStack: true, Cache: mc.Key(),
		})
	}
	var pPhaseCache *study.Pending
	if len(opt.caches) > 0 {
		pPhaseCache = sch.Submit(study.RunConfig{
			Kind: study.RunTQUAD, SliceInterval: 5000, IncludeStack: true, Cache: opt.caches[0].Key(),
		})
	}

	// The slowdown grid shares the scheduler, so any of its
	// configurations that coincide with a figure's reuse that run.
	rows, rowsErr := sch.Slowdown([]uint64{native / 2000, native / 64, native / 16})

	// Drain the whole sweep before rendering anything: a failed
	// experiment means a non-zero exit with no partial tables.
	if errs := sch.Flush(); len(errs) > 0 {
		for _, e := range errs {
			log.Print(e)
		}
		return fmt.Errorf("%d experiment(s) failed; no tables rendered", len(errs))
	}
	if rowsErr != nil {
		return rowsErr
	}

	// The sweep is complete; every Wait below returns instantly.
	flatRes, err := pFlat.Wait()
	if err != nil {
		return err
	}
	quadExRes, err := pQuadEx.Wait()
	if err != nil {
		return err
	}
	quadInRes, err := pQuadIn.Wait()
	if err != nil {
		return err
	}
	instrRes, err := pInstr.Wait()
	if err != nil {
		return err
	}
	fig6Res, err := pFig6.Wait()
	if err != nil {
		return err
	}
	fig7Res, err := pFig7.Wait()
	if err != nil {
		return err
	}
	phasesRes, err := pPhases.Wait()
	if err != nil {
		return err
	}
	// The temporal runs feed the live bandwidth chart (no-ops when
	// -serve is unset and chart is nil).
	for _, res := range []*study.RunResult{fig6Res, fig7Res, phasesRes} {
		chart.Add(res.Key, study.EffectiveBandwidth(res.Temporal))
	}
	memProfs := make([]*memsim.Profile, len(pCaches))
	for i, p := range pCaches {
		res, err := p.Wait()
		if err != nil {
			return err
		}
		memProfs[i] = res.Mem
		chart.Add(res.Key, study.EffectiveBandwidth(res.Temporal))
	}
	var phaseMem *memsim.Profile
	if pPhaseCache != nil {
		res, err := pPhaseCache.Wait()
		if err != nil {
			return err
		}
		phaseMem = res.Mem
	}

	fmt.Printf("## Case study: hArtes-wfs-like workload (%s configuration)\n\n", config)
	fmt.Printf("1 primary source, %d secondary sources (speakers), %d frames of %d samples, %d-point FFT.\n",
		cfg.Speakers, cfg.Frames, cfg.FrameSize, cfg.FFTSize)
	fmt.Printf("Native execution: %d guest instructions.\n\n", native)

	fmt.Println("### Table I — flat profile (gprof analogue)")
	fmt.Println()
	fmt.Println(study.RenderTableI(flatRes.Flat))

	fmt.Println("### Table II — QUAD producer/consumer summary")
	fmt.Println()
	fmt.Println(study.RenderTableII(quadExRes.Quad, quadInRes.Quad))

	fmt.Println("### Table III — flat profile of the QUAD-instrumented run")
	fmt.Println()
	fmt.Println(study.RenderTableIII(flatRes.Flat, instrRes.Flat))

	fmt.Printf("### Figure 6 — reads, stack included, %d slices (slowdown %.1fx)\n\n",
		fig6Res.Temporal.NumSlices, float64(fig6Res.Time)/float64(fig6Res.Temporal.TotalInstr))
	fmt.Println("```")
	fmt.Print(study.RenderFigure("bytes per slice", fig6Res.Temporal, wfs.TopTenKernels(), true, true, 64))
	fmt.Println("```")
	fmt.Println()

	fmt.Printf("### Figure 7 — writes, stack excluded, %d slices\n\n", fig7Res.Temporal.NumSlices)
	fmt.Println("```")
	fmt.Print(study.RenderFigure("bytes per slice", fig7Res.Temporal, wfs.LastTenKernels(), false, false, 128))
	fmt.Println("```")
	fmt.Println()

	phases := s.PhasesFromProfile(phasesRes.Temporal)
	fmt.Printf("### Table IV — %d phases over %d slices of 5000 instructions\n\n",
		len(phases), phasesRes.Temporal.NumSlices)
	fmt.Println("```")
	fmt.Print(study.RenderTableIV(phases, phasesRes.Temporal.NumSlices))
	fmt.Println("```")

	if len(memProfs) > 0 {
		fmt.Println("### Memory hierarchy — effective off-chip bandwidth (simulated)")
		fmt.Println()
		fmt.Println(study.RenderCacheSweep(memProfs))
		fmt.Printf("#### Off-chip bytes per slice, %s\n\n", memProfs[0].Config.Key())
		fmt.Println("```")
		fmt.Print(study.RenderMemFigure("off-chip bytes per slice", memProfs[0], wfs.TopTenKernels(), 64))
		fmt.Println("```")
		fmt.Println()
		fmt.Println("#### Table IV companion — per-phase off-chip traffic")
		fmt.Println()
		fmt.Println("```")
		fmt.Print(study.RenderPhaseOffChip(phases, phaseMem))
		fmt.Println("```")
	}

	fmt.Println("### Section V.A — instrumentation slowdown (simulated)")
	fmt.Println()
	fmt.Println(study.RenderSlowdown(rows))

	// Task clustering (the paper's stated consumer of these results).
	res := cluster.Build(phasesRes.Temporal, quadInRes.Quad, cluster.Options{TargetClusters: 5, IncludeStack: true})
	fmt.Println("### Outlook — kernel clustering for task partitioning")
	fmt.Println()
	for i, c := range res.Clusters {
		fmt.Printf("cluster %d (intra %d bytes): %v\n", i+1, c.IntraBytes, c.Kernels)
	}
	fmt.Printf("inter-cluster communication: %d bytes\n", res.InterBytes)

	if o != nil {
		if err := o.WriteFiles(opt.metricsOut, opt.traceOut, opt.journalOut); err != nil {
			return err
		}
		fmt.Println()
		fmt.Println("### Observability — pipeline stages and aggregate overhead")
		fmt.Println()
		fmt.Print(study.RenderObsSummary(o))
	}
	return nil
}
