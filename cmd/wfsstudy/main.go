// Command wfsstudy reproduces the paper's entire evaluation section in
// one run: Tables I-IV, Figures 6-7 (as text charts), the slowdown study
// and the kernel-clustering outlook.  Its output is the source of
// EXPERIMENTS.md.
//
// Usage:
//
//	wfsstudy [-config small|study] [-metrics FILE] [-trace FILE] [-journal FILE]
//
// -metrics writes a Prometheus text-format snapshot of every run's
// counters, -trace a chrome://tracing JSON timeline of the pipeline
// stages, and -journal a JSONL event journal.  Counters accumulate over
// the whole study (process-lifetime totals across all runs).
package main

import (
	"flag"
	"fmt"
	"log"

	"tquad/internal/cluster"
	"tquad/internal/core"
	"tquad/internal/obs"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wfsstudy: ")
	config := flag.String("config", "study", "workload configuration: small or study")
	metricsOut := flag.String("metrics", "", "write a Prometheus text-format metrics snapshot to this file")
	traceOut := flag.String("trace", "", "write a chrome://tracing JSON trace of the pipeline stages to this file")
	journalOut := flag.String("journal", "", "write a JSONL event journal (spans + metrics) to this file")
	flag.Parse()

	var cfg wfs.Config
	switch *config {
	case "small":
		cfg = wfs.Small()
	case "study":
		cfg = wfs.Study()
	default:
		log.Fatalf("unknown config %q", *config)
	}

	// The observer stays nil (zero-cost) unless an export was requested.
	var o *obs.Observer
	if *metricsOut != "" || *traceOut != "" || *journalOut != "" {
		o = obs.NewObserver()
	}

	s, err := study.NewObserved(cfg, o)
	if err != nil {
		log.Fatal(err)
	}
	native, err := s.NativeICount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("## Case study: hArtes-wfs-like workload (%s configuration)\n\n", *config)
	fmt.Printf("1 primary source, %d secondary sources (speakers), %d frames of %d samples, %d-point FFT.\n",
		cfg.Speakers, cfg.Frames, cfg.FrameSize, cfg.FFTSize)
	fmt.Printf("Native execution: %d guest instructions.\n\n", native)

	// Table I.
	flat, err := s.FlatProfile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("### Table I — flat profile (gprof analogue)")
	fmt.Println()
	fmt.Println(study.RenderTableI(flat))

	// Table II.
	excl, _, err := s.QUAD(false)
	if err != nil {
		log.Fatal(err)
	}
	incl, _, err := s.QUAD(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("### Table II — QUAD producer/consumer summary")
	fmt.Println()
	fmt.Println(study.RenderTableII(excl, incl))

	// Table III.
	base, instr, err := s.InstrumentedFlat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("### Table III — flat profile of the QUAD-instrumented run")
	fmt.Println()
	fmt.Println(study.RenderTableIII(base, instr))

	// Figure 6.
	iv64, err := s.SliceForCount(64)
	if err != nil {
		log.Fatal(err)
	}
	prof6, m6, err := s.TQUAD(core.Options{SliceInterval: iv64, IncludeStack: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("### Figure 6 — reads, stack included, %d slices (slowdown %.1fx)\n\n",
		prof6.NumSlices, float64(m6.Time())/float64(prof6.TotalInstr))
	fmt.Println("```")
	fmt.Print(study.RenderFigure("bytes per slice", prof6, wfs.TopTenKernels(), true, true, 64))
	fmt.Println("```")
	fmt.Println()

	// Figure 7.
	iv256, err := s.SliceForCount(256)
	if err != nil {
		log.Fatal(err)
	}
	prof7, _, err := s.TQUAD(core.Options{SliceInterval: iv256, IncludeStack: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("### Figure 7 — writes, stack excluded, %d slices\n\n", prof7.NumSlices)
	fmt.Println("```")
	fmt.Print(study.RenderFigure("bytes per slice", prof7, wfs.LastTenKernels(), false, false, 128))
	fmt.Println("```")
	fmt.Println()

	// Table IV.
	phases, prof, err := s.Phases(5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("### Table IV — %d phases over %d slices of 5000 instructions\n\n", len(phases), prof.NumSlices)
	fmt.Println("```")
	fmt.Print(study.RenderTableIV(phases, prof.NumSlices))
	fmt.Println("```")

	// Slowdown.
	rows, err := s.Slowdown([]uint64{native / 2000, native / 64, native / 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("### Section V.A — instrumentation slowdown (simulated)")
	fmt.Println()
	fmt.Println(study.RenderSlowdown(rows))

	// Task clustering (the paper's stated consumer of these results).
	res := cluster.Build(prof, incl, cluster.Options{TargetClusters: 5, IncludeStack: true})
	fmt.Println("### Outlook — kernel clustering for task partitioning")
	fmt.Println()
	for i, c := range res.Clusters {
		fmt.Printf("cluster %d (intra %d bytes): %v\n", i+1, c.IntraBytes, c.Kernels)
	}
	fmt.Printf("inter-cluster communication: %d bytes\n", res.InterBytes)

	if o != nil {
		if err := o.WriteFiles(*metricsOut, *traceOut, *journalOut); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Println("### Observability — pipeline stages and aggregate overhead")
		fmt.Println()
		fmt.Print(study.RenderObsSummary(o))
	}
}
