package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchNameOrdersSameDayReruns(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
		date string
		rev  int
	}{
		{"BENCH_2026-08-08.json", true, "2026-08-08", 1},
		{"BENCH_2026-08-08.2.json", true, "2026-08-08", 2},
		{"BENCH_2026-08-08.10.json", true, "2026-08-08", 10},
		{"BENCH_2026-08-09.json", true, "2026-08-09", 1},
		{"BENCH_notes.json", false, "", 0},
		{"bench_2026-08-08.json", false, "", 0},
	}
	for _, c := range cases {
		k, ok := parseBenchName(c.name)
		if ok != c.ok {
			t.Fatalf("%s: ok=%v, want %v", c.name, ok, c.ok)
		}
		if ok && (k.date != c.date || k.rev != c.rev) {
			t.Fatalf("%s: key=%+v, want {%s %d}", c.name, k, c.date, c.rev)
		}
	}
}

// writeLog writes a minimal go test -json stream with one benchmark
// whose result line is split across two output events — the shape real
// logs have for wide result lines.
func writeLog(t *testing.T, dir, name string, ns string) {
	t.Helper()
	lines := []string{
		`{"Action":"start","Package":"tquad"}`,
		`{"Action":"output","Package":"tquad","Output":"BenchmarkRunObsOff\n"}`,
		`{"Action":"output","Package":"tquad","Output":"BenchmarkRunObsOff \t"}`,
		`{"Action":"output","Package":"tquad","Output":"       1\t` + ns + ` ns/op\n"}`,
		`{"Action":"pass","Package":"tquad"}`,
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestNewestPairPicksLatestRevisions(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, "BENCH_2026-08-07.json", "7000000000")
	writeLog(t, dir, "BENCH_2026-08-08.json", "5000000000")
	writeLog(t, dir, "BENCH_2026-08-08.2.json", "1000000000")
	oldPath, newPath, err := newestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(oldPath) != "BENCH_2026-08-08.json" || filepath.Base(newPath) != "BENCH_2026-08-08.2.json" {
		t.Fatalf("picked (%s, %s), want same-day base then rerun", oldPath, newPath)
	}
}

func TestCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, "BENCH_2026-08-08.json", "5000000000")
	writeLog(t, dir, "BENCH_2026-08-08.2.json", "1000000000")
	oldPath, newPath, err := newestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := parseBenchLog(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := parseBenchLog(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if oldRes["BenchmarkRunObsOff"] != 5e9 || newRes["BenchmarkRunObsOff"] != 1e9 {
		t.Fatalf("parsed ns/op: old=%v new=%v", oldRes, newRes)
	}
	out := renderComparison(oldRes, newRes)
	if !strings.Contains(out, "BenchmarkRunObsOff") || !strings.Contains(out, "5.00x") || !strings.Contains(out, "-80.0%") {
		t.Fatalf("comparison table missing expected cells:\n%s", out)
	}
}

func TestParseBenchLogRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-08.json")
	if err := os.WriteFile(path, []byte(`{"Action":"start","Package":"tquad"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseBenchLog(path); err == nil {
		t.Fatal("expected error for a log with no benchmark results")
	}
}
