// Command benchcmp compares two dated benchmark logs produced by `make
// bench-json` (go test -json streams) and prints per-benchmark deltas.
//
// With no arguments it picks the two newest BENCH_*.json files in the
// current directory — same-day reruns are written as BENCH_<date>.2.json,
// BENCH_<date>.3.json, … and order after the base file — so the common
// workflow is simply:
//
//	make bench-json   # before the change
//	make bench-json   # after the change
//	make bench-compare
//
// Two explicit paths (old first, new second) compare any pair of logs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tquad/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	var oldPath, newPath string
	switch len(os.Args) {
	case 1:
		var err error
		oldPath, newPath, err = newestPair(".")
		if err != nil {
			log.Fatal(err)
		}
	case 3:
		oldPath, newPath = os.Args[1], os.Args[2]
	default:
		log.Fatal("usage: benchcmp [old.json new.json]")
	}
	oldRes, err := parseBenchLog(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newRes, err := parseBenchLog(newPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old: %s\nnew: %s\n\n", oldPath, newPath)
	fmt.Print(renderComparison(oldRes, newRes))
}

// benchKey orders BENCH_<date>[.rev].json filenames: by date, then by
// the numeric rerun revision (the bare file is revision 1).
type benchKey struct {
	date string
	rev  int
}

var benchName = regexp.MustCompile(`^BENCH_(\d{4}-\d{2}-\d{2})(?:\.(\d+))?\.json$`)

func parseBenchName(name string) (benchKey, bool) {
	m := benchName.FindStringSubmatch(name)
	if m == nil {
		return benchKey{}, false
	}
	k := benchKey{date: m[1], rev: 1}
	if m[2] != "" {
		k.rev, _ = strconv.Atoi(m[2])
	}
	return k, true
}

// newestPair returns the two newest benchmark logs in dir (older first).
func newestPair(dir string) (oldPath, newPath string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	type dated struct {
		key  benchKey
		name string
	}
	var logs []dated
	for _, e := range entries {
		if k, ok := parseBenchName(e.Name()); ok {
			logs = append(logs, dated{key: k, name: e.Name()})
		}
	}
	if len(logs) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_*.json files in %s, found %d", dir, len(logs))
	}
	sort.Slice(logs, func(i, j int) bool {
		if logs[i].key.date != logs[j].key.date {
			return logs[i].key.date < logs[j].key.date
		}
		return logs[i].key.rev < logs[j].key.rev
	})
	n := len(logs)
	return filepath.Join(dir, logs[n-2].name), filepath.Join(dir, logs[n-1].name), nil
}

// benchLine matches one benchmark result in the reassembled test output:
// name, iteration count, ns/op.  Extra per-benchmark metrics after ns/op
// are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

// parseBenchLog extracts benchmark name → ns/op from a go test -json
// stream.  Output events split long lines across several JSON records,
// so the output is reassembled per package before scanning.
func parseBenchLog(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type event struct {
		Action  string
		Package string
		Output  string
	}
	outputs := make(map[string]*strings.Builder)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		b := outputs[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			outputs[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	results := make(map[string]float64)
	for _, pkg := range order {
		for _, line := range strings.Split(outputs[pkg].String(), "\n") {
			if m := benchLine.FindStringSubmatch(line); m != nil {
				ns, err := strconv.ParseFloat(m[3], 64)
				if err == nil {
					results[m[1]] = ns
				}
			}
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return results, nil
}

// renderComparison renders the per-benchmark delta table in the shared
// report idiom.  Benchmarks present in only one log are listed with a
// dash; speedup is old/new (higher is better).
func renderComparison(oldRes, newRes map[string]float64) string {
	names := make(map[string]bool)
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	t := report.NewTable("benchmark", "old", "new", "delta", "speedup")
	for _, n := range sorted {
		o, haveOld := oldRes[n]
		v, haveNew := newRes[n]
		switch {
		case !haveOld:
			t.AddRow(n, "-", fmtSec(v), "-", "-")
		case !haveNew:
			t.AddRow(n, fmtSec(o), "-", "-", "-")
		default:
			t.AddRow(n, fmtSec(o), fmtSec(v),
				fmt.Sprintf("%+.1f%%", 100*(v-o)/o),
				fmt.Sprintf("%.2fx", o/v))
		}
	}
	return t.String()
}

func fmtSec(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}
