// Command tquad runs the tQUAD temporal memory-bandwidth profiler on the
// WFS case-study workload and prints per-kernel bandwidth series and
// statistics — the data behind the paper's Figures 6/7 and Table IV.
//
// Usage:
//
//	tquad [-config small|study] [-slice N[,N...]] [-cache SPEC[;SPEC...]]
//	      [-jobs N]
//	      [-timeout D] [-max-icount N] [-retries N] [-resume DIR]
//	      [-stack include|exclude] [-ignore-libs]
//	      [-metric reads|writes|both] [-kernels top|last|all]
//	      [-width N] [-csv]
//	      [-record FILE] [-replay FILE [-salvage]]
//	      [-metrics FILE] [-trace FILE] [-journal FILE]
//	      [-serve ADDR] [-stall-window D]
//
// -slice accepts a comma-separated list of intervals (duplicates are
// collapsed); more than one interval runs the whole sweep through the
// parallel experiment scheduler (bounded by -jobs, default GOMAXPROCS)
// and prints each run's charts and statistics in interval order.  If
// any run fails the command reports every failure and exits non-zero.
// The export flags (-csv, -json, -svg, -metrics, -trace, -journal)
// apply to single runs only.
//
// -cache additionally simulates a memory hierarchy (set-associative LRU
// caches with write-back/write-allocate plus a DRAM open-row model) over
// the same access stream, e.g. -cache l1=32k/8/64,l2=256k/8/64,llc=8m/16/64
// (per level: capacity/ways/line-size; k/m/g suffixes allowed).  The run
// gains a per-kernel hit-rate/off-chip table, an off-chip bytes-per-slice
// chart and a hierarchy digest.  A semicolon-separated list of
// hierarchies sweeps cache geometries: all of them — crossed with every
// -slice interval — are profiled off a single recorded guest execution
// and a closing comparison table ranks the geometries.
//
// Execution is supervised: SIGINT/SIGTERM (and the -timeout deadline)
// stop the guest at its next basic block and exit cleanly, removing any
// partially written -record file or sweep temp traces.  -max-icount
// overrides the guest instruction budget.  -retries re-runs transiently
// failed sweep runs with deterministic backoff and -resume DIR journals
// completed sweep runs (and the recorded trace) into DIR so a rerun
// skips completed guest work; both apply to multi-interval sweeps only.
//
// -record additionally captures the guest's dynamic event stream into a
// compact binary trace during a single-interval live run (flushed and
// fsynced before the success message prints); -replay then profiles
// that trace — at any slice interval, any number of times — without
// executing the guest again.  Replays verify the trace's checksums and
// fail on damage; -salvage instead replays around damaged chunks and
// reports exactly what was lost.  Inspect recorded traces with tqdump
// -etrace.
//
// -metrics writes a Prometheus text-format snapshot, -trace a
// chrome://tracing-compatible JSON trace of the pipeline stages (open it
// at chrome://tracing or https://ui.perfetto.dev), and -journal a JSONL
// event journal of spans and metrics.
//
// -serve starts an embedded telemetry server for the duration of the
// invocation (live runs and sweeps; not -replay): GET / is a live
// progress page with per-run progress bars and a bandwidth chart of
// completed runs, /metrics the Prometheus registry, /events a
// Server-Sent Events stream of run lifecycle events (append
// ?format=jsonl for plain JSONL), and /debug/pprof/ the Go profiler.
// -stall-window flags a run as stalled — a `stalled` event plus the
// tquad_sched_stalled_total counter — after that long without a
// heartbeat.  With -serve unset none of this machinery is built and the
// execution hot path is untouched.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"tquad/internal/cliutil"
	"tquad/internal/core"
	"tquad/internal/etrace"
	"tquad/internal/memsim"
	"tquad/internal/obs"
	"tquad/internal/obs/live"
	"tquad/internal/pin"
	"tquad/internal/plot"
	"tquad/internal/report"
	"tquad/internal/study"
	"tquad/internal/trace"
	"tquad/internal/vm"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tquad: ")
	var (
		config     = flag.String("config", "small", "workload configuration: small or study")
		slice      = flag.String("slice", "0", "time slice interval(s) in instructions, comma-separated (0 = ~64 slices); more than one runs a parallel sweep")
		cache      = flag.String("cache", "", "simulate a cache hierarchy, e.g. l1=32k/8/64,l2=256k/8/64,llc=8m/16/64; semicolon-separated list sweeps hierarchies off one recorded execution")
		jobs       = flag.Int("jobs", 0, "maximum concurrently executing runs in a -slice sweep (0 = GOMAXPROCS)")
		stack      = flag.String("stack", "include", "stack-area accesses: include or exclude")
		ignoreLibs = flag.Bool("ignore-libs", false, "exclude OS/library routine bandwidth")
		metric     = flag.String("metric", "reads", "plotted metric: reads, writes or both")
		kernels    = flag.String("kernels", "top", "kernel set: top (ten), last (ten) or all")
		width      = flag.Int("width", 64, "chart width in characters")
		csv        = flag.Bool("csv", false, "emit raw per-slice CSV instead of charts")
		jsonFile   = flag.String("json", "", "also write the full profile as JSON to this file")
		svgFile    = flag.String("svg", "", "render the bandwidth heatmap (the paper's figure) as SVG to this file")
		metricsOut = flag.String("metrics", "", "write a Prometheus text-format metrics snapshot to this file")
		traceOut   = flag.String("trace", "", "write a chrome://tracing JSON trace of the pipeline stages to this file")
		journalOut = flag.String("journal", "", "write a JSONL event journal (spans + metrics) to this file")
		recordOut  = flag.String("record", "", "record the guest event stream to this file (single-interval live run)")
		replayIn   = flag.String("replay", "", "replay a recorded event stream instead of executing the guest")
		salvage    = flag.Bool("salvage", false, "with -replay: replay around damaged chunks and report the gap")
		replayJobs = flag.Int("replay-jobs", 1, "trace-decode workers for -replay and sweep replays: 1 = sequential, 0 = GOMAXPROCS")
		timeout    = flag.Duration("timeout", 0, "wall-clock deadline for the whole invocation (0 = none)")
		maxICount  = flag.Uint64("max-icount", 0, "guest instruction budget per run (0 = default)")
		retries    = flag.Int("retries", 0, "sweep only: retries per run after transient failures")
		resume     = flag.String("resume", "", "sweep only: checkpoint journal directory for resumable sweeps")
		engine     = flag.String("engine", "block", "execution engine: block (pre-decoded basic blocks) or step (reference interpreter)")
		serveAddr  = flag.String("serve", "", "serve live telemetry (progress page, /metrics, /events, pprof) on this address, e.g. :8080")
		stallWin   = flag.Duration("stall-window", 10*time.Second, "with -serve: flag a run as stalled after this long without a heartbeat (0 = never)")
	)
	flag.Parse()

	cfg, err := pickConfig(*config)
	if err != nil {
		log.Fatal(err)
	}
	includeStack := *stack == "include"
	if *stack != "include" && *stack != "exclude" {
		log.Fatalf("bad -stack %q", *stack)
	}
	if *jobs < 0 {
		log.Fatalf("bad -jobs %d: must be >= 0", *jobs)
	}
	if *replayJobs < 0 {
		log.Fatalf("bad -replay-jobs %d: must be >= 0", *replayJobs)
	}
	if *retries < 0 {
		log.Fatalf("bad -retries %d: must be >= 0", *retries)
	}
	if *engine != "block" && *engine != "step" {
		log.Fatalf("bad -engine %q: must be block or step", *engine)
	}
	interpret := *engine == "step"
	if *recordOut != "" && *replayIn != "" {
		log.Fatal("-record and -replay are mutually exclusive")
	}
	if *salvage && *replayIn == "" {
		log.Fatal("-salvage applies to -replay only")
	}
	if *serveAddr != "" && *replayIn != "" {
		log.Fatal("-serve applies to live runs and sweeps only, not -replay")
	}
	// Every output path is probed before any guest work: a typo'd export
	// flag fails in milliseconds, not after the run.
	if err := cliutil.EnsureWritableAll(
		"-json", *jsonFile, "-svg", *svgFile, "-metrics", *metricsOut,
		"-trace", *traceOut, "-journal", *journalOut, "-record", *recordOut,
	); err != nil {
		log.Fatal(err)
	}
	intervals, err := parseSlices(*slice)
	if err != nil {
		log.Fatal(err)
	}
	caches, err := parseCaches(*cache)
	if err != nil {
		log.Fatal(err)
	}

	// A sweep is any invocation with more than one run: several slice
	// intervals, several cache hierarchies, or both (the cross product).
	sweep := len(intervals) > 1 || len(caches) > 1
	if sweep {
		if *csv || *jsonFile != "" || *svgFile != "" || *metricsOut != "" || *traceOut != "" || *journalOut != "" {
			log.Fatal("-csv, -json, -svg, -metrics, -trace and -journal apply to single runs only")
		}
		if *recordOut != "" {
			log.Fatal("-record applies to single runs only")
		}
	} else if *retries != 0 || *resume != "" {
		log.Fatal("-retries and -resume apply to sweeps only")
	}

	// SIGINT/SIGTERM (and -timeout) cancel the run context: the guest
	// stops at its next basic block, partial outputs are removed, and
	// the process exits non-zero instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	budget := *maxICount
	if budget == 0 {
		budget = wfs.MaxInstr
	}

	// The live telemetry server, its run tracker and the shared metrics
	// registry exist only under -serve; everywhere else the sink stays
	// nil and the hot path runs exactly as before.
	var (
		liveObs *obs.Observer
		tracker *live.Tracker
		chart   *live.ChartData
	)
	if *serveAddr != "" {
		liveObs = obs.NewObserver()
		chart = live.NewChartData("effective bandwidth of completed runs", "B/instr")
		tracker = live.NewTracker(live.TrackerOptions{Registry: liveObs.Registry(), StallWindow: *stallWin})
		defer tracker.Close()
		srv, err := live.Serve(*serveAddr, live.Options{
			Registry: liveObs.Registry(),
			Tracker:  tracker,
			Chart:    chart.SVG,
			Title:    "tquad " + *config,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		// The bound address goes to stdout: with -serve :0 the kernel picks
		// the port, and scripts (and the daemon's tests) read it from here.
		fmt.Printf("live telemetry at %s\n", srv.URL())
	}

	if *replayIn != "" {
		err := runReplay(ctx, *replayIn, &replayOpts{
			intervals:    intervals,
			caches:       caches,
			jobs:         *replayJobs,
			salvage:      *salvage,
			includeStack: includeStack,
			ignoreLibs:   *ignoreLibs,
			stack:        *stack,
			metric:       *metric,
			kernels:      *kernels,
			width:        *width,
			csv:          *csv,
			jsonFile:     *jsonFile,
			svgFile:      *svgFile,
			metricsOut:   *metricsOut,
			traceOut:     *traceOut,
			journalOut:   *journalOut,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if sweep {
		sup := supervision{
			ctx: ctx, retries: *retries, resume: *resume, budget: budget,
			interpret: interpret, replayJobs: *replayJobs,
			obs: liveObs, events: tracker, chart: chart,
		}
		if err := runSweep(cfg, intervals, caches, includeStack, *ignoreLibs, *jobs, *metric, *kernels, *width, sup); err != nil {
			log.Fatal(err)
		}
		return
	}

	// The observer stays nil (zero-cost) unless an export was requested
	// or the telemetry server needs a registry to publish into.
	o := liveObs
	if o == nil && (*metricsOut != "" || *traceOut != "" || *journalOut != "") {
		o = obs.NewObserver()
	}
	run := o.Tracer().Start("run")

	w, err := wfs.NewWorkloadObserved(cfg, o.Tracer())
	if err != nil {
		log.Fatal(err)
	}
	w.Interpret = interpret
	instrument := o.Tracer().Start("instrument")
	m, _ := w.NewMachine()
	e := pin.NewEngine(m)
	interval := intervals[0]
	if interval == 0 {
		// Dry-sizing: aim for ~64 slices like the paper's Figure 6.
		s, err := study.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		interval, err = s.SliceForCount(64)
		if err != nil {
			log.Fatal(err)
		}
	}
	tool := core.Attach(e, core.Options{
		SliceInterval: interval,
		IncludeStack:  includeStack,
		ExcludeLibs:   *ignoreLibs,
	})
	var memTool *memsim.Tool
	if len(caches) == 1 {
		memTool, err = memsim.Attach(e, memsim.Options{
			Config:        caches[0],
			SliceInterval: interval,
			ExcludeLibs:   *ignoreLibs,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	var (
		recFile *os.File
		recBuf  *bufio.Writer
		rec     *etrace.Recorder
	)
	if *recordOut != "" {
		recFile, err = os.Create(*recordOut)
		if err != nil {
			log.Fatal(err)
		}
		recBuf = bufio.NewWriterSize(recFile, 1<<16)
		rec, err = etrace.Record(e, recBuf, etrace.RecordOptions{Workload: "wfs/" + *config})
		if err != nil {
			log.Fatal(err)
		}
	}
	instrument.End()

	// Under -serve the single run reports the same lifecycle the sweep
	// scheduler would: queued/started up front, block-boundary heartbeats
	// while the guest executes, succeeded/failed at the end.
	const runKey = "run"
	if tracker != nil {
		tracker.Publish(obs.Event{Type: obs.EventQueued, Key: runKey})
		tracker.Publish(obs.Event{Type: obs.EventStarted, Key: runKey, Attempt: 1})
		var lastBeat uint64
		m.PushWatchdog(func(m *vm.Machine) error {
			if m.ICount-lastBeat >= study.DefaultHeartbeatStride {
				lastBeat = m.ICount
				tracker.Publish(obs.Event{Type: obs.EventHeartbeat, Key: runKey, ICount: m.ICount, Budget: budget})
			}
			return nil
		})
	}

	execute := o.Tracer().Start("execute")
	if err := m.RunContext(ctx, budget); err != nil {
		// A cancelled or failed run must not leave a partial trace file
		// behind masquerading as a recording.
		if recFile != nil {
			recFile.Close()
			os.Remove(*recordOut)
		}
		if tracker != nil {
			tracker.Publish(obs.Event{Type: obs.EventFailed, Key: runKey, Attempt: 1, Err: err.Error()})
		}
		log.Fatalf("run: %v", err)
	}
	execute.SetInstr(m.ICount)
	execute.SetBytes(m.MemStats.ReadBytes() + m.MemStats.WriteBytes())
	execute.End()
	if rec != nil {
		// Finish, flush, fsync, close — every error surfaced.  The fsync
		// means the success message below is a durability statement: once
		// printed, the trace survives a host crash.
		err := rec.Finish()
		if err == nil {
			err = recBuf.Flush()
		}
		if err == nil {
			err = recFile.Sync()
		}
		if cerr := recFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(*recordOut)
			log.Fatalf("record: %v", err)
		}
		fmt.Printf("event trace written to %s\n", *recordOut)
	}

	snapshot := o.Tracer().Start("snapshot")
	prof := tool.Snapshot()
	snapshot.SetInstr(prof.TotalInstr)
	snapshot.End()
	if tracker != nil {
		tracker.Publish(obs.Event{Type: obs.EventSucceeded, Key: runKey, ICount: m.ICount})
		chart.Add(runKey, study.EffectiveBandwidth(prof))
	}
	// finish closes the run span, publishes the per-run metrics and writes
	// the requested export files; it must run on every exit path that
	// produced a profile.
	finish := func(reportSpan *obs.Span) {
		reportSpan.End()
		run.End()
		if o == nil {
			return
		}
		m.PublishMetrics(o.Metrics)
		e.PublishMetrics(o.Metrics)
		tool.PublishMetrics(o.Metrics)
		if memTool != nil {
			memTool.PublishMetrics(o.Metrics)
		}
		if prof.TotalInstr > 0 {
			o.Metrics.Gauge("tquad_run_slowdown").Set(float64(m.Time()) / float64(prof.TotalInstr))
		}
		if err := o.WriteFiles(*metricsOut, *traceOut, *journalOut); err != nil {
			log.Fatal(err)
		}
	}

	reportSpan := o.Tracer().Start("report")
	if *jsonFile != "" {
		fh, err := os.Create(*jsonFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.SaveTemporal(fh, prof); err != nil {
			log.Fatal(err)
		}
		fh.Close()
	}

	names := study.KernelSet(*kernels, prof)
	if *svgFile != "" {
		svg := plot.Heatmap(prof, plot.SortLanesByFirstActivity(prof, names), plot.Options{
			Title:        fmt.Sprintf("tQUAD %s bandwidth (%s)", *metric, *stack+" stack"),
			Reads:        *metric != "writes",
			IncludeStack: includeStack,
		})
		if err := os.WriteFile(*svgFile, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heatmap written to %s\n", *svgFile)
	}
	fmt.Printf("tQUAD: %d instructions, %d slices of %d instructions, slowdown %.1fx\n\n",
		prof.TotalInstr, prof.NumSlices, prof.SliceInterval,
		float64(m.Time())/float64(prof.TotalInstr))

	if *csv {
		emitCSV(prof, names, *metric, includeStack)
		finish(reportSpan)
		return
	}
	study.WriteCharts(os.Stdout, prof, names, study.RenderOptions{
		Metric: *metric, Width: *width, IncludeStack: includeStack,
	})
	fmt.Print(study.SummaryTable(prof, names, includeStack))
	if memTool != nil {
		study.WriteMemSection(os.Stdout, memTool.Snapshot(), names, *width)
	}

	// End-of-run overhead accounting — the live analogue of the paper's
	// Table III / Section V.A breakdown.
	fmt.Println()
	fmt.Print(tool.Breakdown().String())
	finish(reportSpan)
	if o != nil {
		fmt.Println()
		fmt.Print("pipeline stages:\n" + study.RenderSpans(o.Spans))
		if blocks := study.RenderBlockEngine(o.Metrics); blocks != "" {
			fmt.Println()
			fmt.Print("block execution engine:\n" + blocks)
		}
	}
}

// replayOpts carries the output configuration of a -replay invocation.
type replayOpts struct {
	intervals    []uint64
	caches       []memsim.Config
	jobs         int  // decode workers; 1 = sequential Replayer
	salvage      bool // replay around damaged chunks instead of failing
	includeStack bool
	ignoreLibs   bool
	stack        string
	metric       string
	kernels      string
	width        int
	csv          bool
	jsonFile     string
	svgFile      string
	metricsOut   string
	traceOut     string
	journalOut   string
}

// runReplay profiles a recorded event trace at each requested interval
// (crossed with each requested cache hierarchy), sequentially — replays
// are cheap enough that a scheduler would be overkill, and they share no
// state.
func runReplay(ctx context.Context, path string, o *replayOpts) error {
	mcs := []*memsim.Config{nil}
	if len(o.caches) > 0 {
		mcs = mcs[:0]
		for i := range o.caches {
			mcs = append(mcs, &o.caches[i])
		}
	}
	first := true
	for _, iv := range o.intervals {
		for _, mc := range mcs {
			if !first {
				fmt.Println()
			}
			first = false
			if err := replayOne(ctx, path, iv, mc, o); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayOne replays the trace once through the tQUAD tool, mirroring the
// live single-run path's output (charts, statistics, exports).
func replayOne(ctx context.Context, path string, interval uint64, mc *memsim.Config, o *replayOpts) error {
	var ob *obs.Observer
	if o.metricsOut != "" || o.traceOut != "" || o.journalOut != "" {
		ob = obs.NewObserver()
	}
	run := ob.Tracer().Start("run")
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if interval == 0 {
		// Dry-sizing from the recording itself: no guest run needed, the
		// trailer already has the total instruction count.
		info, err := etrace.Stat(f)
		if err != nil || !info.Complete {
			// Dry-sizing needs the trailer's instruction total, which a
			// damaged trace may not have even in salvage mode.
			if o.salvage {
				return fmt.Errorf("%s: cannot size slices from a damaged trace; pass an explicit -slice", path)
			}
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			return fmt.Errorf("%s: incomplete trace (no end record)", path)
		}
		if interval = info.FinalICount / 64; interval == 0 {
			interval = 1
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}

	instrument := ob.Tracer().Start("instrument")
	// Sequential and indexed-parallel replay share the Consumer host; the
	// driver only differs in how it walks the chunks.
	var host *etrace.Consumer
	var driver interface{ ReplayContext(context.Context) error }
	if o.jobs == 1 {
		var rp *etrace.Replayer
		if o.salvage {
			rp, err = etrace.NewSalvageReplayer(f)
		} else {
			rp, err = etrace.NewReplayer(f)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		host, driver = rp.Consumer, rp
	} else {
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		pr, err := etrace.NewParallelReplayer(f, fi.Size(), etrace.ParallelOptions{Jobs: o.jobs, Salvage: o.salvage})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		host, driver = pr.NewConsumer(), pr
	}
	tool := core.Attach(host, core.Options{
		SliceInterval: interval,
		IncludeStack:  o.includeStack,
		ExcludeLibs:   o.ignoreLibs,
	})
	var memTool *memsim.Tool
	if mc != nil {
		memTool, err = memsim.Attach(host, memsim.Options{
			Config:        *mc,
			SliceInterval: interval,
			ExcludeLibs:   o.ignoreLibs,
		})
		if err != nil {
			return err
		}
	}
	instrument.End()

	replay := ob.Tracer().Start("replay")
	if err := driver.ReplayContext(ctx); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	replay.SetInstr(host.ICount())
	rb, wb := host.Traffic()
	replay.SetBytes(rb + wb)
	replay.End()
	if rep := host.SalvageReport(); rep != nil && rep.Damaged() {
		fmt.Printf("salvage: %s\n", rep)
	}
	if host.ExitCode() != 0 {
		return fmt.Errorf("%s: recorded guest exit code %d", path, host.ExitCode())
	}

	snapshot := ob.Tracer().Start("snapshot")
	prof := tool.Snapshot()
	snapshot.SetInstr(prof.TotalInstr)
	snapshot.End()

	reportSpan := ob.Tracer().Start("report")
	if o.jsonFile != "" {
		fh, err := os.Create(o.jsonFile)
		if err != nil {
			return err
		}
		if err := trace.SaveTemporal(fh, prof); err != nil {
			return err
		}
		fh.Close()
	}
	names := study.KernelSet(o.kernels, prof)
	if o.svgFile != "" {
		svg := plot.Heatmap(prof, plot.SortLanesByFirstActivity(prof, names), plot.Options{
			Title:        fmt.Sprintf("tQUAD %s bandwidth (%s)", o.metric, o.stack+" stack"),
			Reads:        o.metric != "writes",
			IncludeStack: o.includeStack,
		})
		if err := os.WriteFile(o.svgFile, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("heatmap written to %s\n", o.svgFile)
	}
	fmt.Printf("tQUAD (replay of %s): %d instructions, %d slices of %d instructions, slowdown %.1fx\n\n",
		path, prof.TotalInstr, prof.NumSlices, prof.SliceInterval,
		float64(host.Time())/float64(prof.TotalInstr))

	if o.csv {
		emitCSV(prof, names, o.metric, o.includeStack)
	} else {
		study.WriteCharts(os.Stdout, prof, names, study.RenderOptions{
			Metric: o.metric, Width: o.width, IncludeStack: o.includeStack,
		})
		fmt.Print(study.SummaryTable(prof, names, o.includeStack))
		if memTool != nil {
			study.WriteMemSection(os.Stdout, memTool.Snapshot(), names, o.width)
		}
		fmt.Println()
		fmt.Print(tool.Breakdown().String())
	}
	reportSpan.End()
	run.End()
	if ob != nil {
		host.PublishMetrics(ob.Metrics)
		tool.PublishMetrics(ob.Metrics)
		if memTool != nil {
			memTool.PublishMetrics(ob.Metrics)
		}
		if prof.TotalInstr > 0 {
			ob.Metrics.Gauge("tquad_run_slowdown").Set(float64(host.Time()) / float64(prof.TotalInstr))
		}
		if err := ob.WriteFiles(o.metricsOut, o.traceOut, o.journalOut); err != nil {
			return err
		}
	}
	return nil
}

// supervision bundles the sweep's resilience and telemetry settings.
type supervision struct {
	ctx       context.Context
	retries   int
	resume    string
	budget    uint64
	interpret  bool // run guests on the reference interpreter (-engine=step)
	replayJobs int  // decode workers for batched sweep replays

	// Live telemetry (all nil unless -serve): the observer whose registry
	// the server exposes, the tracker receiving lifecycle events, and the
	// chart accumulating completed-run bandwidth.
	obs    *obs.Observer
	events *live.Tracker
	chart  *live.ChartData
}

// runSweep executes one tQUAD run per interval×hierarchy combination
// through the parallel scheduler and prints each run's output in sweep
// order.  In replay mode (the scheduler default) the whole sweep shares
// one recorded guest execution, however many hierarchies it compares.
func runSweep(cfg wfs.Config, intervals []uint64, caches []memsim.Config, includeStack, ignoreLibs bool, jobs int, metric, kernels string, width int, sup supervision) error {
	s, err := study.NewObserved(cfg, sup.obs)
	if err != nil {
		return err
	}
	s.W.Interpret = sup.interpret
	sch := study.NewScheduler(s, jobs)
	defer sch.Close()
	sch.SetContext(sup.ctx)
	sch.SetRetries(sup.retries)
	sch.SetMaxInstr(sup.budget)
	sch.SetReplayJobs(sup.replayJobs)
	if sup.events != nil {
		sch.SetEvents(sup.events)
	}
	if sup.resume != "" {
		ck, err := study.OpenCheckpoint(sup.resume)
		if err != nil {
			return err
		}
		defer ck.Close()
		sch.SetCheckpoint(ck)
		if done := len(ck.Completed()); done > 0 {
			log.Printf("resuming: %d run(s) already completed in %s", done, sup.resume)
		}
	}
	resolved := make([]uint64, len(intervals))
	for i, iv := range intervals {
		if iv == 0 {
			if iv, err = sch.SliceForCount(64); err != nil {
				return err
			}
		}
		resolved[i] = iv
	}
	cacheKeys := []string{""}
	if len(caches) > 0 {
		cacheKeys = cacheKeys[:0]
		for _, c := range caches {
			cacheKeys = append(cacheKeys, c.Key())
		}
	}
	pend := make([]*study.Pending, 0, len(resolved)*len(cacheKeys))
	for _, iv := range resolved {
		for _, ck := range cacheKeys {
			pend = append(pend, sch.Submit(study.RunConfig{
				Kind:          study.RunTQUAD,
				SliceInterval: iv,
				IncludeStack:  includeStack,
				ExcludeLibs:   ignoreLibs,
				Cache:         ck,
			}))
		}
	}
	// Drain the sweep before printing: any failure means a non-zero exit
	// with no partial output.
	if errs := sch.Flush(); len(errs) > 0 {
		for _, e := range errs {
			log.Print(e)
		}
		return fmt.Errorf("%d of %d runs failed", len(errs), len(pend))
	}
	results := make([]*study.RunResult, 0, len(pend))
	for _, p := range pend {
		res, err := p.Wait()
		if err != nil {
			return err
		}
		sup.chart.Add(res.Key, study.EffectiveBandwidth(res.Temporal))
		results = append(results, res)
	}
	study.WriteSweepReport(os.Stdout, results, resolved, len(caches) > 1, study.RenderOptions{
		Metric: metric, Kernels: kernels, Width: width, IncludeStack: includeStack,
	})
	return nil
}

// parseSlices parses the -slice flag: a comma-separated list of
// non-negative interval values.  Empty elements (from "1,,2", a leading
// or trailing comma, or an empty flag) are rejected rather than silently
// dropped, and duplicate intervals collapse to the first occurrence so a
// sweep never runs — or prints — the same configuration twice.
func parseSlices(s string) ([]uint64, error) {
	return cliutil.ParseList("-slice", s, ",",
		func(part string) (uint64, error) {
			iv, err := strconv.ParseUint(part, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("not a non-negative integer")
			}
			return iv, nil
		},
		func(iv uint64) string { return strconv.FormatUint(iv, 10) })
}

// parseCaches parses the -cache flag: a semicolon-separated list of
// hierarchy descriptions (levels within one hierarchy are
// comma-separated, so the list separator must differ).  Hierarchies that
// canonicalise to the same geometry collapse to one run.  An empty flag
// leaves the simulator detached.
func parseCaches(s string) ([]memsim.Config, error) {
	if s == "" {
		return nil, nil
	}
	return cliutil.ParseList("-cache", s, ";", memsim.ParseConfig, memsim.Config.Key)
}

func pickConfig(name string) (wfs.Config, error) {
	switch name {
	case "small":
		return wfs.Small(), nil
	case "study":
		return wfs.Study(), nil
	}
	return wfs.Config{}, fmt.Errorf("unknown config %q (want small or study)", name)
}

func emitCSV(prof *core.Profile, names []string, metric string, includeStack bool) {
	header := append([]string{"slice"}, names...)
	rows := make([][]float64, prof.NumSlices)
	series := make(map[string][]uint64, len(names))
	for _, n := range names {
		if k, ok := prof.Kernel(n); ok {
			series[n] = k.Series(prof.NumSlices, metric != "writes", includeStack)
		} else {
			series[n] = make([]uint64, prof.NumSlices)
		}
	}
	for s := uint64(0); s < prof.NumSlices; s++ {
		row := []float64{float64(s)}
		for _, n := range names {
			row = append(row, float64(series[n][s]))
		}
		rows[s] = row
	}
	os.Stdout.WriteString(report.CSV(header, rows))
}
