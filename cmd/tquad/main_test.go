package main

import (
	"reflect"
	"testing"
)

func TestParseSlices(t *testing.T) {
	good := []struct {
		in   string
		want []uint64
	}{
		{"0", []uint64{0}},
		{"5000", []uint64{5000}},
		{"100,200,300", []uint64{100, 200, 300}},
		{" 100 , 200 ", []uint64{100, 200}},
		// Duplicates collapse, keeping the first occurrence's position.
		{"200,100,200,100", []uint64{200, 100}},
		{"7,7,7", []uint64{7}},
	}
	for _, c := range good {
		got, err := parseSlices(c.in)
		if err != nil {
			t.Errorf("parseSlices(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseSlices(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	bad := []string{
		"",       // strings.Split yields one empty element
		",",      // two empty elements
		"100,",   // trailing comma
		",100",   // leading comma
		"1,,2",   // empty element in the middle
		"  ",     // whitespace-only element
		"abc",    // not a number
		"100,-5", // negative
		"1e3",    // no float syntax
	}
	for _, in := range bad {
		if got, err := parseSlices(in); err == nil {
			t.Errorf("parseSlices(%q) = %v, want error", in, got)
		}
	}
}
