package main

// Golden tests for the command itself: with memsim disabled the output
// must stay byte-identical to the pre-memsim baseline captured in
// testdata/, and a cache sweep must render identically at any -jobs.
// The tests re-exec the test binary with TQUAD_BE_TOOL set, which makes
// TestMain dispatch straight into main() — a real process-level run,
// flag parsing and exit codes included, with no flag-redefinition games.

import (
	"bytes"
	"os"
	"os/exec"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("TQUAD_BE_TOOL") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSelf re-executes this test binary as the tquad command and returns
// its stdout.
func runSelf(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TQUAD_BE_TOOL=1")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("tquad %v: %v\nstderr:\n%s", args, err, errb.String())
	}
	if errb.Len() != 0 {
		t.Fatalf("tquad %v wrote to stderr:\n%s", args, errb.String())
	}
	return out.String()
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGoldenBaselineSingle: a single run with memsim disabled is
// byte-identical to the output captured before the memsim PR.
func TestGoldenBaselineSingle(t *testing.T) {
	got := runSelf(t, "-config", "small", "-slice", "200000")
	if want := golden(t, "golden_small_200000.txt"); got != want {
		t.Errorf("single-run output drifted from pre-memsim baseline:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenBaselineSweep: a slice sweep with memsim disabled matches the
// pre-memsim baseline at jobs=1 and jobs=4.
func TestGoldenBaselineSweep(t *testing.T) {
	want := golden(t, "golden_small_sweep.txt")
	for _, jobs := range []string{"1", "4"} {
		got := runSelf(t, "-config", "small", "-slice", "200000,400000", "-jobs", jobs)
		if got != want {
			t.Errorf("jobs=%s sweep output drifted from pre-memsim baseline:\n--- got ---\n%s--- want ---\n%s", jobs, got, want)
		}
	}
}

// TestGoldenCacheSweepDeterministic: the acceptance-criteria sweep — four
// cache geometries off one recorded execution — renders byte-identically
// at any parallelism.
func TestGoldenCacheSweepDeterministic(t *testing.T) {
	const caches = "l1=1k/2/64;l1=2k/4/64;l1=4k/4/64,l2=32k/8/64;l1=8k/8/64,l2=64k/8/64,llc=256k/16/64"
	a := runSelf(t, "-config", "small", "-slice", "200000", "-cache", caches, "-jobs", "1")
	b := runSelf(t, "-config", "small", "-slice", "200000", "-cache", caches, "-jobs", "4")
	if a != b {
		t.Errorf("cache sweep output depends on -jobs:\n--- jobs=1 ---\n%s--- jobs=4 ---\n%s", a, b)
	}
	if !bytes.Contains([]byte(a), []byte("cache sweep comparison")) {
		t.Error("cache sweep output missing the comparison table")
	}
}

// TestGoldenRecordReplayParallel: -record then -replay must print the
// same charts and statistics as the live run, and the indexed parallel
// replay (-replay-jobs > 1) must be byte-identical to the sequential
// one — at single-worker, multi-worker and GOMAXPROCS settings, with
// both stack policies.
func TestGoldenRecordReplayParallel(t *testing.T) {
	trace := t.TempDir() + "/small.etrace"
	runSelf(t, "-config", "small", "-slice", "200000", "-record", trace)
	for _, stack := range []string{"include", "exclude"} {
		want := runSelf(t, "-replay", trace, "-slice", "200000", "-stack", stack, "-replay-jobs", "1")
		for _, jobs := range []string{"2", "4", "0"} {
			got := runSelf(t, "-replay", trace, "-slice", "200000", "-stack", stack, "-replay-jobs", jobs)
			if got != want {
				t.Errorf("-stack %s -replay-jobs %s output differs from sequential replay:\n--- got ---\n%s--- want ---\n%s",
					stack, jobs, got, want)
			}
		}
	}
}

// TestGoldenSweepReplayJobs: a cache sweep's batched replays decode in
// parallel without changing a byte of output.
func TestGoldenSweepReplayJobs(t *testing.T) {
	const caches = "l1=1k/2/64;l1=4k/4/64,l2=32k/8/64"
	want := runSelf(t, "-config", "small", "-slice", "200000", "-cache", caches, "-replay-jobs", "1")
	got := runSelf(t, "-config", "small", "-slice", "200000", "-cache", caches, "-replay-jobs", "4")
	if got != want {
		t.Errorf("sweep output depends on -replay-jobs:\n--- jobs=1 ---\n%s--- jobs=4 ---\n%s", want, got)
	}
}
