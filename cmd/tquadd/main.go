// tquadd is the tQUAD analysis daemon: it serves the sweep workflow of
// cmd/tquad as a long-running HTTP service with a durable job queue.
// Jobs submitted over the API (or the dashboard at /) persist in an
// append-only journal under -data, execute through the supervised
// scheduler with per-job checkpoints, and leave their reports, profiles
// and charts in a content-addressed artifact store.  Kill the daemon at
// any point and restart it on the same -data directory: interrupted
// jobs resume from their checkpoints with zero guest re-execution.
//
// Usage:
//
//	tquadd -data /var/lib/tquad [-listen :8077] [-workers 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tquad/internal/jobd"
)

func main() {
	data := flag.String("data", "", "data directory: job journal, checkpoints, artifacts (required)")
	listen := flag.String("listen", ":8077", "HTTP listen address (\":0\" picks a free port)")
	workers := flag.Int("workers", 1, "jobs to execute concurrently")
	schedJobs := flag.Int("sched-jobs", runtime.GOMAXPROCS(0), "per-job scheduler worker count")
	stall := flag.Duration("stall", 10*time.Second, "per-run stall detector window (0 disables)")
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "tquadd: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	d, err := jobd.New(jobd.Options{
		DataDir:     *data,
		Workers:     *workers,
		SchedJobs:   *schedJobs,
		StallWindow: *stall,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tquadd: %v\n", err)
		os.Exit(1)
	}
	srv, err := jobd.Serve(d, *listen)
	if err != nil {
		d.Shutdown()
		fmt.Fprintf(os.Stderr, "tquadd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tquadd serving at %s (data %s)\n", srv.URL(), *data)

	// SIGTERM/SIGINT drain gracefully: running guests stop at their next
	// basic block, completed work is already checkpointed, interrupted
	// jobs stay journalled as running and resume on the next boot.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Println("tquadd: draining...")
	srv.Close()
	if err := d.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "tquadd: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("tquadd: stopped")
}
