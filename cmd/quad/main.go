// Command quad runs the QUAD memory-access-pattern analyser on the WFS
// case-study workload, printing the Table II producer/consumer summary
// and, optionally, the QDU graph in Graphviz DOT form.
//
// Usage:
//
//	quad [-config small|study] [-stack include|exclude|both]
//	     [-ignore-libs] [-dot FILE] [-min-bytes N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tquad/internal/pin"
	"tquad/internal/quad"
	"tquad/internal/report"
	"tquad/internal/study"
	"tquad/internal/trace"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quad: ")
	var (
		config     = flag.String("config", "small", "workload configuration: small or study")
		stack      = flag.String("stack", "both", "stack-area accesses: include, exclude or both")
		ignoreLibs = flag.Bool("ignore-libs", false, "exclude OS/library routine accesses")
		dotFile    = flag.String("dot", "", "write the QDU graph in DOT form to this file (- for stdout)")
		minBytes   = flag.Uint64("min-bytes", 1, "omit QDU edges thinner than this")
		jsonFile   = flag.String("json", "", "also write the stack-inclusive report as JSON to this file")
	)
	flag.Parse()

	var cfg wfs.Config
	switch *config {
	case "small":
		cfg = wfs.Small()
	case "study":
		cfg = wfs.Study()
	default:
		log.Fatalf("unknown config %q", *config)
	}

	run := func(includeStack bool) *quad.Report {
		w, err := wfs.NewWorkload(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m, _ := w.NewMachine()
		e := pin.NewEngine(m)
		tool := quad.Attach(e, quad.Options{IncludeStack: includeStack, ExcludeLibs: *ignoreLibs})
		if err := m.Run(wfs.MaxInstr); err != nil {
			log.Fatalf("run: %v", err)
		}
		return tool.Report()
	}

	saveJSON := func(rep *quad.Report) {
		if *jsonFile == "" {
			return
		}
		fh, err := os.Create(*jsonFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.SaveQUAD(fh, rep); err != nil {
			log.Fatal(err)
		}
		fh.Close()
	}

	switch *stack {
	case "both":
		excl := run(false)
		incl := run(true)
		fmt.Print(study.RenderTableII(excl, incl))
		writeDot(incl, *dotFile, *minBytes)
		saveJSON(incl)
	case "include", "exclude":
		rep := run(*stack == "include")
		t := report.NewTable("kernel", "IN", "IN UnMA", "OUT", "OUT UnMA")
		for _, k := range rep.Kernels {
			t.AddRow(k.Name, report.U(k.In), report.U(k.InUnMA), report.U(k.Out), report.U(k.OutUnMA))
		}
		fmt.Print(t.String())
		writeDot(rep, *dotFile, *minBytes)
		saveJSON(rep)
	default:
		log.Fatalf("bad -stack %q", *stack)
	}
}

func writeDot(rep *quad.Report, path string, minBytes uint64) {
	if path == "" {
		return
	}
	dot := rep.QDUGraphDOT(minBytes)
	if path == "-" {
		fmt.Print(dot)
		return
	}
	if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("QDU graph written to %s\n", path)
}
