// Command gprofsim produces the gprof-style flat profile of the WFS
// case-study workload (paper Table I), or — with -instrumented — the
// flat profile of the QUAD-instrumented run with rank and trend columns
// (paper Table III).
//
// Usage:
//
//	gprofsim [-config small|study] [-instrumented] [-sample N] [-all]
package main

import (
	"flag"
	"fmt"
	"log"

	"tquad/internal/report"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gprofsim: ")
	var (
		config       = flag.String("config", "small", "workload configuration: small or study")
		instrumented = flag.Bool("instrumented", false, "profile the QUAD-instrumented binary (Table III)")
		all          = flag.Bool("all", false, "include every routine, not just the paper's kernels")
	)
	flag.Parse()

	var cfg wfs.Config
	switch *config {
	case "small":
		cfg = wfs.Small()
	case "study":
		cfg = wfs.Study()
	default:
		log.Fatalf("unknown config %q", *config)
	}
	s, err := study.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *instrumented {
		base, instr, err := s.InstrumentedFlat()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flat profile of the QUAD-instrumented run (total %.3fs vs native %.3fs)\n\n",
			instr.TotalSeconds, base.TotalSeconds)
		fmt.Print(study.RenderTableIII(base, instr))
		return
	}

	p, err := s.FlatProfile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat profile: %d samples, %.4f simulated seconds\n\n", p.TotalSamples, p.TotalSeconds)
	if !*all {
		fmt.Print(study.RenderTableI(p))
		return
	}
	t := report.NewTable("routine", "%time", "self seconds", "calls", "self ms/call", "total ms/call")
	for _, r := range p.Rows {
		t.AddRow(r.Name, report.F2(r.Pct), report.F(r.SelfSeconds), report.U(r.Calls),
			report.F(r.SelfMsCall), report.F(r.TotalMsCall))
	}
	fmt.Print(t.String())
}
