package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"tquad/internal/etrace"
	"tquad/internal/pin"
	"tquad/internal/wfs"
)

// streamReader serves a trace in small slices and fails the test if the
// dumper ever asks for a big contiguous read — the signature of
// whole-file buffering (io.ReadAll / os.ReadFile style) that -etrace
// must never do: recorded traces can be orders of magnitude larger than
// memory.
type streamReader struct {
	t    *testing.T
	data []byte
	off  int
}

func (r *streamReader) Read(p []byte) (int, error) {
	if len(p) > 256<<10 {
		r.t.Fatalf("dump requested a %d-byte read: trace is being buffered, not streamed", len(p))
	}
	if len(p) > 4<<10 {
		p = p[:4<<10] // drip-feed; a streaming consumer must tolerate short reads
	}
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// recordTrace captures the small WFS workload's event trace.
func recordTrace(t *testing.T) []byte {
	t.Helper()
	w, err := wfs.NewWorkload(wfs.Small())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := w.NewMachine()
	e := pin.NewEngine(m)
	var buf bytes.Buffer
	rec, err := etrace.Record(e, &buf, etrace.RecordOptions{Workload: "wfs/small", Blocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(wfs.MaxInstr); err != nil {
		t.Fatal(err)
	}
	if err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDumpTraceStreams(t *testing.T) {
	data := recordTrace(t)
	if len(data) < 1<<20 {
		t.Fatalf("recorded trace is only %d bytes; too small to prove streaming", len(data))
	}
	var out strings.Builder
	if err := dumpTraceReader(&out, "stream.etrace", &streamReader{t: t, data: data}); err != nil {
		t.Fatal(err)
	}
	dump := out.String()
	for _, want := range []string{
		"event trace stream.etrace: format v2",
		"routines (",
		"index: footer with",
		"final state:",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}

	// The same dump over a seekable reader must be identical: streaming
	// is a transport detail, not a different report.
	var out2 strings.Builder
	if err := dumpTraceReader(&out2, "stream.etrace", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if out2.String() != dump {
		t.Error("streamed dump differs from seekable dump")
	}
}

func TestDumpTraceTruncated(t *testing.T) {
	data := recordTrace(t)
	// Cut at a chunk boundary: mid-chunk cuts are decode errors, but a
	// recording that died between flushes is still inspectable.
	idx, err := etrace.ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil || idx == nil || len(idx.Chunks) < 2 {
		t.Fatalf("trace index unavailable for boundary cut: %v (%+v)", err, idx)
	}
	cut := idx.Chunks[len(idx.Chunks)/2].Offset
	var out strings.Builder
	if err := dumpTraceReader(&out, "cut.etrace", bytes.NewReader(data[:cut])); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final state: MISSING") {
		t.Errorf("truncated dump should report a missing final state:\n%s", out.String())
	}
	if strings.Contains(out.String(), "index: footer") {
		t.Errorf("truncated dump should not claim an index footer:\n%s", out.String())
	}
}
