package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// pinnedTraceJSON mirrors the documented -etrace -json schema exactly.
// Decoding with DisallowUnknownFields pins the schema: a field renamed
// or removed upstream fails here before it breaks a consumer's script.
type pinnedTraceJSON struct {
	Path     string `json:"path"`
	Status   string `json:"status"`
	ExitCode int    `json:"exit_code"`
	Error    string `json:"error"`

	Version     int  `json:"version"`
	Checksummed bool `json:"checksummed"`

	Workload  string `json:"workload"`
	StackBase uint64 `json:"stack_base"`
	Routines  int    `json:"routines"`
	Records   *struct {
		Statics   uint64 `json:"statics"`
		Reads     uint64 `json:"reads"`
		Writes    uint64 `json:"writes"`
		Calls     uint64 `json:"calls"`
		Returns   uint64 `json:"returns"`
		Skipped   uint64 `json:"skipped"`
		BlockDefs uint64 `json:"block_defs"`
		Blocks    uint64 `json:"blocks"`
	} `json:"records"`

	Index *struct {
		Present bool   `json:"present"`
		Chunks  int    `json:"chunks"`
		Error   string `json:"error"`
	} `json:"index"`

	Chunks []struct {
		Offset  int64  `json:"offset"`
		Size    int64  `json:"size"`
		Records uint64 `json:"records"`
		StartIC uint64 `json:"start_ic"`
		EndIC   uint64 `json:"end_ic"`
		Error   string `json:"error"`
	} `json:"chunks"`
	BadChunks     int   `json:"bad_chunks"`
	LostTailBytes int64 `json:"lost_tail_bytes"`
	Complete      bool  `json:"complete"`

	Final *struct {
		ICount   uint64 `json:"icount"`
		PC       uint64 `json:"pc"`
		ExitCode int64  `json:"exit_code"`
		Halted   bool   `json:"halted"`
	} `json:"final"`
}

func decodePinned(t *testing.T, out []byte) pinnedTraceJSON {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(out))
	dec.DisallowUnknownFields()
	var doc pinnedTraceJSON
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("output does not match the pinned schema: %v\n%s", err, out)
	}
	return doc
}

func TestDumpTraceJSONIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "small.etrace")
	if err := os.WriteFile(path, recordTrace(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := dumpTraceJSON(&out, path)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitTraceOK {
		t.Fatalf("exit code %d, want %d", code, exitTraceOK)
	}
	doc := decodePinned(t, out.Bytes())
	if doc.Status != "ok" || doc.ExitCode != 0 {
		t.Fatalf("status %q exit %d, want ok/0", doc.Status, doc.ExitCode)
	}
	if doc.Version != 2 || !doc.Checksummed {
		t.Errorf("version/checksummed = %d/%v, want 2/true", doc.Version, doc.Checksummed)
	}
	if doc.Workload != "wfs/small" || doc.Routines == 0 {
		t.Errorf("workload %q routines %d", doc.Workload, doc.Routines)
	}
	if doc.Records == nil || doc.Records.Reads == 0 || doc.Records.Writes == 0 {
		t.Errorf("record counts missing or empty: %+v", doc.Records)
	}
	if doc.Index == nil || !doc.Index.Present || doc.Index.Chunks != len(doc.Chunks) {
		t.Errorf("index block inconsistent: %+v vs %d chunks", doc.Index, len(doc.Chunks))
	}
	if len(doc.Chunks) == 0 || doc.BadChunks != 0 || !doc.Complete {
		t.Errorf("chunk table: %d chunks, %d bad, complete=%v", len(doc.Chunks), doc.BadChunks, doc.Complete)
	}
	if doc.Final == nil || doc.Final.ICount == 0 || !doc.Final.Halted {
		t.Errorf("final state: %+v", doc.Final)
	}
}

func TestDumpTraceJSONDamaged(t *testing.T) {
	data := recordTrace(t)
	// Flip a byte deep inside the stream: a chunk CRC must catch it.
	data[len(data)/2] ^= 0xff
	path := filepath.Join(t.TempDir(), "bad.etrace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := dumpTraceJSON(&out, path)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitTraceSalvageable {
		t.Fatalf("exit code %d, want %d", code, exitTraceSalvageable)
	}
	doc := decodePinned(t, out.Bytes())
	if doc.Status != "damaged" || doc.ExitCode != exitTraceSalvageable {
		t.Fatalf("status %q exit %d, want damaged/%d", doc.Status, doc.ExitCode, exitTraceSalvageable)
	}
	if doc.BadChunks == 0 {
		t.Error("damaged trace reports zero bad chunks")
	}
	bad := 0
	for _, c := range doc.Chunks {
		if c.Error != "" {
			bad++
		}
	}
	if bad != doc.BadChunks {
		t.Errorf("bad_chunks %d but %d chunk entries carry errors", doc.BadChunks, bad)
	}
}

func TestDumpTraceJSONUnreadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.etrace")
	if err := os.WriteFile(path, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := dumpTraceJSON(&out, path)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitTraceUnreadable {
		t.Fatalf("exit code %d, want %d", code, exitTraceUnreadable)
	}
	doc := decodePinned(t, out.Bytes())
	if doc.Status != "unreadable" || doc.Error == "" {
		t.Fatalf("status %q error %q, want unreadable with an error", doc.Status, doc.Error)
	}
	if !strings.HasSuffix(doc.Path, "junk.etrace") {
		t.Errorf("path %q", doc.Path)
	}
}
