// Machine-readable -etrace output (-json): one JSON object per trace,
// with the same triage exit codes as the text mode.  The schema is
// stable — scripts and the test suite pin it — so new fields may be
// added but existing ones never change meaning or type.
package main

import (
	"encoding/json"
	"io"
	"os"

	"tquad/internal/etrace"
)

// traceJSON is the -etrace -json document.
type traceJSON struct {
	Path string `json:"path"`
	// Status triages the trace: "ok", "damaged" or "unreadable" —
	// mirroring exit codes 0, 3 and 4.
	Status   string `json:"status"`
	ExitCode int    `json:"exit_code"`
	Error    string `json:"error,omitempty"` // unreadable only

	Version     int  `json:"version,omitempty"`
	Checksummed bool `json:"checksummed,omitempty"`

	// Identity and record counts, present when the stream decodes
	// (status "ok").
	Workload  string            `json:"workload,omitempty"`
	StackBase uint64            `json:"stack_base,omitempty"`
	Routines  int               `json:"routines,omitempty"`
	Records   *traceRecordsJSON `json:"records,omitempty"`

	Index *traceIndexJSON `json:"index,omitempty"`

	// Per-chunk verification table (always present for readable traces).
	Chunks        []traceChunkJSON `json:"chunks"`
	BadChunks     int              `json:"bad_chunks"`
	LostTailBytes int64            `json:"lost_tail_bytes"`
	Complete      bool             `json:"complete"`

	Final *traceFinalJSON `json:"final,omitempty"` // only when complete
}

type traceRecordsJSON struct {
	Statics   uint64 `json:"statics"`
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
	Calls     uint64 `json:"calls"`
	Returns   uint64 `json:"returns"`
	Skipped   uint64 `json:"skipped"`
	BlockDefs uint64 `json:"block_defs"`
	Blocks    uint64 `json:"blocks"`
}

type traceIndexJSON struct {
	Present bool   `json:"present"`
	Chunks  int    `json:"chunks"`
	Error   string `json:"error,omitempty"`
}

type traceChunkJSON struct {
	Offset  int64  `json:"offset"`
	Size    int64  `json:"size"`
	Records uint64 `json:"records,omitempty"`
	StartIC uint64 `json:"start_ic,omitempty"`
	EndIC   uint64 `json:"end_ic,omitempty"`
	Error   string `json:"error,omitempty"`
}

type traceFinalJSON struct {
	ICount   uint64 `json:"icount"`
	PC       uint64 `json:"pc"`
	ExitCode int64  `json:"exit_code"`
	Halted   bool   `json:"halted"`
}

// dumpTraceJSON is dumpTrace's machine-readable twin: same verification
// pass, same exit codes, JSON on w instead of prose.
func dumpTraceJSON(w io.Writer, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 1, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 1, err
	}
	doc := traceJSON{Path: path, Chunks: []traceChunkJSON{}}
	health, err := etrace.Verify(f, st.Size())
	if err != nil {
		doc.Status = "unreadable"
		doc.ExitCode = exitTraceUnreadable
		doc.Error = err.Error()
		return doc.ExitCode, writeTraceJSON(w, &doc)
	}
	doc.Version = health.Version
	doc.Checksummed = health.Checksummed
	doc.Index = &traceIndexJSON{Present: health.Indexed, Chunks: len(health.Chunks), Error: health.IndexErr}
	for _, c := range health.Chunks {
		doc.Chunks = append(doc.Chunks, traceChunkJSON{
			Offset: c.Ref.Offset, Size: c.Ref.Size, Records: c.Ref.Records,
			StartIC: c.Ref.StartIC, EndIC: c.Ref.EndIC, Error: c.Err,
		})
	}
	doc.BadChunks = health.Bad
	doc.LostTailBytes = health.LostTailBytes
	doc.Complete = health.Complete

	if health.Damaged() {
		doc.Status = "damaged"
		doc.ExitCode = exitTraceSalvageable
		return doc.ExitCode, writeTraceJSON(w, &doc)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 1, err
	}
	info, err := etrace.Stat(f)
	if err != nil {
		// Verify passed but the record stream does not decode: treat as
		// damage rather than a host failure, keeping exit-code semantics.
		doc.Status = "damaged"
		doc.ExitCode = exitTraceSalvageable
		doc.Error = err.Error()
		return doc.ExitCode, writeTraceJSON(w, &doc)
	}
	doc.Status = "ok"
	doc.ExitCode = exitTraceOK
	doc.Workload = info.Workload
	doc.StackBase = info.StackBase
	doc.Routines = len(info.Routines)
	doc.Records = &traceRecordsJSON{
		Statics: info.Statics, Reads: info.Reads, Writes: info.Writes,
		Calls: info.Calls, Returns: info.Returns, Skipped: info.Skipped,
		BlockDefs: info.BlockDefs, Blocks: info.Blocks,
	}
	if info.Complete {
		doc.Final = &traceFinalJSON{
			ICount: info.FinalICount, PC: info.FinalPC,
			ExitCode: info.ExitCode, Halted: info.Halted,
		}
	}
	return doc.ExitCode, writeTraceJSON(w, &doc)
}

func writeTraceJSON(w io.Writer, doc *traceJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
