// Command tqdump inspects guest binary images: symbol tables, segment
// layout and instruction-level disassembly — the "objdump" of the
// simulated toolchain.  It can also save the built images to disk and
// re-inspect them, demonstrating that the profilers need nothing but the
// binary machine code, and summarise recorded event traces (-etrace).
//
// Usage:
//
//	tqdump [-app wfs|imgproc] [-config small|study] [-func NAME]
//	       [-save DIR] [-load FILE...]
//	tqdump -etrace FILE [-salvage | -json]
//
// With -etrace, the trace is verified end to end (header checksum, every
// chunk's CRC32C, the index footer) and a per-chunk health report is
// printed when damage is found.  -salvage additionally replays around the
// damage and reports exactly what was lost.  Exit status triages stored
// traces for scripts: 0 the trace is intact, 3 it is damaged but
// salvageable (header and framing are usable), 4 it is unreadable.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"tquad/internal/cfg"
	"tquad/internal/etrace"
	"tquad/internal/image"
	"tquad/internal/imgproc"
	"tquad/internal/isa"
	"tquad/internal/pin"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tqdump: ")
	var (
		app        = flag.String("app", "wfs", "application to build: wfs or imgproc")
		config     = flag.String("config", "small", "wfs configuration: small or study")
		fnName     = flag.String("func", "", "disassemble this routine (default: symbols only)")
		cfgDump    = flag.Bool("cfg", false, "with -func: dump the routine's control-flow graph as DOT")
		saveDir    = flag.String("save", "", "write the built images to this directory as .tqi files")
		etracePath = flag.String("etrace", "", "summarise this recorded event trace instead of dumping images")
		salvage    = flag.Bool("salvage", false, "with -etrace: replay around damaged chunks and report the gap")
		jsonOut    = flag.Bool("json", false, "with -etrace: emit a machine-readable JSON summary instead of text")
	)
	flag.Parse()

	if *etracePath != "" {
		var (
			code int
			err  error
		)
		if *jsonOut {
			code, err = dumpTraceJSON(os.Stdout, *etracePath)
		} else {
			code, err = dumpTrace(*etracePath, *salvage)
		}
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(code)
	}

	var images []*image.Image
	if args := flag.Args(); len(args) > 0 {
		// Load mode: inspect serialised images.
		for _, path := range args {
			blob, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			img, err := image.Unmarshal(blob)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			images = append(images, img)
		}
	} else {
		images = buildImages(*app, *config)
	}

	if *saveDir != "" {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, img := range images {
			path := filepath.Join(*saveDir, img.Name+".tqi")
			if err := os.WriteFile(path, img.Marshal(), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(img.Marshal()))
		}
	}

	for _, img := range images {
		dumpImage(img, *fnName, *cfgDump)
	}
}

// Exit codes of -etrace mode, stable for scripted triage of stored
// traces.  1 remains the generic usage/fatal exit (log.Fatal).
const (
	exitTraceOK          = 0 // trace verified intact
	exitTraceSalvageable = 3 // damaged, but header and framing are usable
	exitTraceUnreadable  = 4 // header unreadable; nothing can be trusted
)

// dumpTrace verifies a recorded event trace and summarises it: header,
// routine table, record counts, the recorded final machine state, and —
// when damage is found — a per-chunk health report and (with -salvage)
// the salvage replay's loss accounting.  The int is the process exit
// code; the error covers host-side failures (the file itself unreadable).
func dumpTrace(path string, salvage bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 1, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 1, err
	}
	health, err := etrace.Verify(f, st.Size())
	if err != nil {
		fmt.Printf("event trace %s: UNREADABLE: %v\n", path, err)
		return exitTraceUnreadable, nil
	}
	if !health.Damaged() {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return 1, err
		}
		if err := dumpTraceReader(os.Stdout, path, f); err != nil {
			return 1, err
		}
		integrity := "no checksums (v1 format)"
		if health.Checksummed {
			integrity = fmt.Sprintf("header, %d chunks and index footer verified (CRC32C)", len(health.Chunks))
		}
		fmt.Printf("integrity: ok, %s\n", integrity)
		return exitTraceOK, nil
	}
	dumpHealth(os.Stdout, path, health)
	if salvage {
		if err := dumpSalvage(os.Stdout, f, st.Size()); err != nil {
			fmt.Printf("salvage: FAILED: %v\n", err)
		}
	} else {
		fmt.Println("rerun with -salvage to replay around the damage")
	}
	return exitTraceSalvageable, nil
}

// dumpHealth renders the per-chunk health report: every chunk when the
// trace is small, damaged chunks only when it is not.
func dumpHealth(w io.Writer, path string, h *Health) {
	fmt.Fprintf(w, "event trace %s: DAMAGED (format v%d)\n", path, h.Version)
	if h.IndexErr != "" {
		fmt.Fprintf(w, "index footer: BROKEN (%s); chunk table rebuilt by frame scan\n", h.IndexErr)
	} else if h.Indexed {
		fmt.Fprintf(w, "index footer: ok, %d chunk entries\n", len(h.Chunks))
	} else {
		fmt.Fprintln(w, "index footer: none; chunk table rebuilt by frame scan")
	}
	const fullTableMax = 32
	full := len(h.Chunks) <= fullTableMax
	for i, c := range h.Chunks {
		if !full && c.Err == "" {
			continue
		}
		status := "ok"
		if c.Err != "" {
			status = "BAD: " + c.Err
		}
		extent := ""
		if c.Ref.Records > 0 {
			extent = fmt.Sprintf(", %d records, ic [%d,%d]", c.Ref.Records, c.Ref.StartIC, c.Ref.EndIC)
		}
		fmt.Fprintf(w, "  chunk %4d  [%#x +%d]%s  %s\n", i, c.Ref.Offset, c.Ref.Size, extent, status)
	}
	if !full {
		fmt.Fprintf(w, "  (%d healthy chunks not listed)\n", len(h.Chunks)-h.Bad)
	}
	if h.LostTailBytes > 0 {
		fmt.Fprintf(w, "torn tail: %d trailing bytes unreachable past the last sound frame\n", h.LostTailBytes)
	}
	if !h.Complete {
		fmt.Fprintln(w, "final state: MISSING (end record damaged or lost)")
	}
	fmt.Fprintf(w, "chunks: %d total, %d damaged\n", len(h.Chunks), h.Bad)
}

// Health is re-exported locally for dumpHealth's signature brevity.
type Health = etrace.Health

// dumpSalvage replays the damaged trace in salvage mode (no tools
// attached — the point is the loss accounting) and prints what survived.
func dumpSalvage(w io.Writer, ra io.ReaderAt, size int64) error {
	p, err := etrace.NewParallelReplayer(ra, size, etrace.ParallelOptions{Jobs: 1, Salvage: true})
	if err != nil {
		return err
	}
	c := p.NewConsumer()
	if err := p.Replay(); err != nil {
		return err
	}
	rep := c.SalvageReport()
	fmt.Fprintf(w, "salvage: %s\n", rep)
	if rep.Complete {
		halted := "halted"
		if !c.Halted() {
			halted = "stopped"
		}
		fmt.Fprintf(w, "final state: %d instructions, pc %#x, exit code %d, %s\n",
			c.ICount(), c.CurrentPC(), c.ExitCode(), halted)
	}
	return nil
}

// dumpTraceReader is dumpTrace over any reader.  It streams: the trace
// is summarised in one bounded-memory pass, never buffered whole, so
// multi-gigabyte recordings and non-seekable sources (pipes) both work.
func dumpTraceReader(w io.Writer, name string, r io.Reader) error {
	info, err := etrace.Stat(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Fprintf(w, "event trace %s: format v%d, workload %q, stack base %#x\n",
		name, info.Version, info.Workload, info.StackBase)
	fmt.Fprintf(w, "routines (%d):\n", len(info.Routines))
	for _, rt := range info.Routines {
		kind := "lib "
		if rt.Main {
			kind = "main"
		}
		fmt.Fprintf(w, "  %#08x  %s  %-28s %5d instructions\n",
			rt.Entry, kind, rt.Name, (rt.End-rt.Entry)/isa.InstrSize)
	}
	fmt.Fprintf(w, "records: %d static, %d reads, %d writes, %d calls, %d returns (%d skipped), %d block defs, %d blocks, %d chunks\n",
		info.Statics, info.Reads, info.Writes, info.Calls, info.Returns,
		info.Skipped, info.BlockDefs, info.Blocks, info.Chunks)
	if info.Indexed {
		fmt.Fprintf(w, "index: footer with %d chunk entries\n", info.IndexChunks)
	} else {
		fmt.Fprintln(w, "index: none (footer absent; parallel replay scans chunk frames)")
	}
	if !info.Complete {
		fmt.Fprintln(w, "final state: MISSING (truncated trace, no end record)")
		return nil
	}
	halted := "halted"
	if !info.Halted {
		halted = "stopped"
	}
	fmt.Fprintf(w, "final state: %d instructions, pc %#x, exit code %d, %s\n",
		info.FinalICount, info.FinalPC, info.ExitCode, halted)
	return nil
}

func buildImages(app, config string) []*image.Image {
	switch app {
	case "wfs":
		var cfg wfs.Config
		switch config {
		case "small":
			cfg = wfs.Small()
		case "study":
			cfg = wfs.Study()
		default:
			log.Fatalf("unknown config %q", config)
		}
		w, err := wfs.NewWorkload(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return w.Prog.Images()
	case "imgproc":
		w, err := imgproc.NewWorkload(imgproc.Small())
		if err != nil {
			log.Fatal(err)
		}
		return w.Prog.Images()
	}
	log.Fatalf("unknown app %q", app)
	return nil
}

func dumpImage(img *image.Image, fnName string, cfgDump bool) {
	fmt.Printf("image %s (%s): code [%#x,%#x) %d bytes, data [%#x,%#x) %d init + %d bss\n",
		img.Name, img.Kind, img.Base, img.CodeEnd(), len(img.Code),
		img.DataBase, img.DataEnd(), len(img.Data), img.BSSSize)
	if fnName == "" {
		for _, r := range img.Routines() {
			fmt.Printf("  %#08x  %-28s %5d instructions\n",
				r.Entry, r.Name, (r.End-r.Entry)/isa.InstrSize)
		}
		fmt.Println()
		return
	}
	r, ok := img.Lookup(fnName)
	if !ok {
		return // not in this image
	}
	code, valid := pin.RoutineCode(img, r)
	if !valid {
		// A hand-edited or corrupted .tqi can claim a routine span outside
		// the code segment; report it instead of slicing out of bounds.
		log.Fatalf("%s: symbol table entry %s [%#x,%#x) lies outside the code segment",
			img.Name, r.Name, r.Entry, r.End)
	}
	if cfgDump {
		g, err := cfg.Build(code, r.Entry)
		if err != nil {
			log.Fatalf("cfg %s: %v", fnName, err)
		}
		fmt.Print(g.DOT(fnName))
		return
	}
	instrs, err := isa.Disassemble(code)
	if err != nil {
		log.Fatalf("disassemble %s: %v", fnName, err)
	}
	fmt.Printf("\n%s:\n", fnName)
	for i, ins := range instrs {
		pc := r.Entry + uint64(i)*isa.InstrSize
		fmt.Printf("  %#08x  %s\n", pc, ins)
	}
	fmt.Println()
}
