// Command wfsrun executes the WFS guest application natively (no
// instrumentation), verifies its output against the host reference DSP,
// and — with -overhead — measures the simulated instrumentation slowdown
// grid of the paper's Section V.A.
//
// Usage:
//
//	wfsrun [-config small|study] [-overhead] [-verify]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tquad/internal/dsp"
	"tquad/internal/study"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wfsrun: ")
	var (
		config   = flag.String("config", "small", "workload configuration: small or study")
		overhead = flag.Bool("overhead", false, "also measure the instrumentation slowdown grid")
		verify   = flag.Bool("verify", true, "verify guest output against the host reference")
	)
	flag.Parse()

	var cfg wfs.Config
	switch *config {
	case "small":
		cfg = wfs.Small()
	case "study":
		cfg = wfs.Study()
	default:
		log.Fatalf("unknown config %q", *config)
	}
	w, err := wfs.NewWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	m, osys, err := w.RunNative()
	if err != nil {
		log.Fatal(err)
	}
	host := time.Since(t0)
	fmt.Printf("guest executed %d instructions in %v (%.1f Minstr/s host)\n",
		m.ICount, host.Round(time.Millisecond), float64(m.ICount)/host.Seconds()/1e6)
	fmt.Printf("memory: %d pages touched (%d KiB); heap %d bytes\n",
		m.Mem.PageCount(), m.Mem.Footprint()/1024, osys.HeapUsed())

	out, err := w.Output(osys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %s — %d channels, %d Hz, %d frames\n",
		cfg.OutputFile, out.Channels, out.SampleRate, out.Frames())

	if *verify {
		want := dsp.Reference(cfg, w.Input.Samples)
		mismatch := 0
		for i := range want {
			if out.Samples[i] != want[i] {
				mismatch++
			}
		}
		if mismatch == 0 {
			fmt.Printf("verify: all %d samples match the host reference bit for bit\n", len(want))
		} else {
			log.Fatalf("verify: %d/%d samples differ from the host reference", mismatch, len(want))
		}
	}

	if *overhead {
		s, err := study.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		native, err := s.NativeICount()
		if err != nil {
			log.Fatal(err)
		}
		rows, err := s.Slowdown([]uint64{native / 2000, native / 64, native / 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\ninstrumentation slowdown (simulated):")
		fmt.Print(study.RenderSlowdown(rows))
	}
}
