// Command phases runs tQUAD at a fine slice interval and identifies the
// application's execution phases (paper Table IV).
//
// Usage:
//
//	phases [-config small|study] [-slice N] [-all-functions]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tquad/internal/core"
	"tquad/internal/phase"
	"tquad/internal/study"
	"tquad/internal/trace"
	"tquad/internal/wfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phases: ")
	var (
		config   = flag.String("config", "small", "workload configuration: small or study")
		slice    = flag.Uint64("slice", 5000, "time slice interval in instructions")
		allFns   = flag.Bool("all-functions", false, "consider every routine, not just the paper's kernels")
		jsonFile = flag.String("json", "", "also write the phase table as JSON to this file")
	)
	flag.Parse()

	var cfg wfs.Config
	switch *config {
	case "small":
		cfg = wfs.Small()
	case "study":
		cfg = wfs.Study()
	default:
		log.Fatalf("unknown config %q", *config)
	}
	s, err := study.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	prof, _, err := s.TQUAD(core.Options{SliceInterval: *slice, IncludeStack: true})
	if err != nil {
		log.Fatal(err)
	}
	opts := phase.Options{IncludeStack: true}
	if !*allFns {
		opts.Kernels = wfs.KernelNames()
	}
	phases := phase.Detect(prof, opts)
	if *jsonFile != "" {
		fh, err := os.Create(*jsonFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.SavePhases(fh, phases); err != nil {
			log.Fatal(err)
		}
		fh.Close()
	}
	fmt.Printf("%d phases over %d slices of %d instructions\n\n",
		len(phases), prof.NumSlices, prof.SliceInterval)
	fmt.Print(study.RenderTableIV(phases, prof.NumSlices))
}
